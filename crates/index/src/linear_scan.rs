//! Exact linear scan — the no-index baseline of Fig. 14b — plus the
//! GEMINI filtered scan (representation filter, exact refinement, no
//! tree), the third search path the planned-kernel equivalence tests
//! exercise.

use sapla_core::{Representation, Result, TimeSeries};
use sapla_distance::{euclidean_early_abandon, safe_sq_bound};

use crate::knn::{KnnHeap, SearchStats, SearchTally};
use crate::scheme::{Query, Scheme};

/// Exact k-NN by scanning every series (with early abandoning on the
/// running kth-best bound). `measured` equals the database size — linear
/// scan has no pruning power by definition.
///
/// # Errors
///
/// Propagates length mismatches.
pub fn linear_scan_knn(query: &TimeSeries, raws: &[TimeSeries], k: usize) -> Result<SearchStats> {
    let mut results = KnnHeap::new(k);
    let mut tally = SearchTally::default();
    tally.consider(raws.len());
    for (i, s) in raws.iter().enumerate() {
        let bound = results.threshold();
        tally.measure();
        if let Some(d) = euclidean_early_abandon(query, s, bound * bound)? {
            results.push(d, i);
        }
    }
    let (retrieved, distances) = results.into_sorted();
    Ok(SearchStats { retrieved, distances, measured: tally.finish_scan(), total: raws.len() })
}

/// GEMINI k-NN without a tree: scan every representation through the
/// scheme's pruned filter (planned `Dist_PAR` with early abandoning for
/// the adaptive schemes) and refine survivors exactly. The flat-scan
/// counterpart of the tree searches — same filter, no node bounds — so
/// it isolates the representation's pruning power from tree quality,
/// and serves as the third path in the planned-kernel equivalence
/// tests.
///
/// With valid lower bounds the retrieved set is the true k-NN; for the
/// adaptive schemes it inherits the conditional-bound caveat of
/// `Dist_PAR`.
///
/// # Errors
///
/// Propagates distance-computation failures.
pub fn filtered_scan_knn(
    q: &Query,
    reps: &[Representation],
    raws: &[TimeSeries],
    k: usize,
    scheme: &dyn Scheme,
) -> Result<SearchStats> {
    debug_assert_eq!(raws.len(), reps.len());
    let mut results = KnnHeap::new(k);
    let mut tally = SearchTally::default();
    let mut dist_scratch = sapla_distance::ParScratch::default();
    tally.consider(reps.len());
    for (i, rep) in reps.iter().enumerate() {
        let threshold = results.threshold();
        // Threshold ∞ (heap not yet full) ⇒ the filter cannot prune;
        // skip it, as the trees do. Strict-invariants builds keep it so
        // every candidate passes the lb ≤ exact audit.
        let skip_filter = threshold.is_infinite() && !cfg!(feature = "strict-invariants");
        if skip_filter || scheme.rep_dist_pruned(q, rep, threshold, &mut dist_scratch)?.is_some() {
            tally.measure();
            // Early-abandoning refinement, same contract as the trees:
            // abandoned ⇒ exact > threshold strictly ⇒ the push would be
            // popped straight back out, so skipping it changes nothing.
            match euclidean_early_abandon(&q.raw, &raws[i], safe_sq_bound(threshold))? {
                Some(exact) => {
                    #[cfg(feature = "strict-invariants")]
                    crate::scheme::assert_lb_le_exact(q, rep, exact, 0.0)?;
                    results.push(exact, i);
                }
                None => sapla_obs::counter!("index.knn.refine_abandoned"),
            }
        } else {
            tally.prune();
        }
    }
    let (retrieved, distances) = results.into_sorted();
    Ok(SearchStats { retrieved, distances, measured: tally.finish_knn(), total: raws.len() })
}

/// [`filtered_scan_knn`] for a batch of queries, candidate-major: every
/// query is evaluated against candidate `i` — filter, then refinement —
/// before any query moves to candidate `i + 1`, so one representation
/// and one raw series stay cache-hot across the whole query block (the
/// flat-scan analogue of the trees' query-major leaf batching).
///
/// Per query this is **bit-identical** to [`filtered_scan_knn`]: each
/// query's heap, thresholds, and candidate order are its own, so
/// swapping the loop nest never changes a query's operation sequence.
/// On failure the earliest (by query index) error is returned, exactly
/// as a sequential per-query loop would report.
///
/// # Errors
///
/// Propagates distance-computation failures.
pub fn filtered_scan_knn_batch(
    queries: &[Query],
    reps: &[Representation],
    raws: &[TimeSeries],
    k: usize,
    scheme: &dyn Scheme,
) -> Result<Vec<SearchStats>> {
    debug_assert_eq!(raws.len(), reps.len());
    let mut results: Vec<KnnHeap> = queries.iter().map(|_| KnnHeap::new(k)).collect();
    let mut tallies = vec![SearchTally::default(); queries.len()];
    let mut dist_scratch = sapla_distance::ParScratch::default();
    let mut first_err: Option<(usize, sapla_core::Error)> = None;
    let mut errored = vec![false; queries.len()];
    for t in &mut tallies {
        t.consider(reps.len());
    }
    for (i, rep) in reps.iter().enumerate() {
        for (qi, q) in queries.iter().enumerate() {
            if errored[qi] {
                continue;
            }
            // The exact per-candidate body of `filtered_scan_knn`.
            let heap = &mut results[qi];
            let threshold = heap.threshold();
            let skip_filter = threshold.is_infinite() && !cfg!(feature = "strict-invariants");
            let step = (|| -> Result<()> {
                if skip_filter
                    || scheme.rep_dist_pruned(q, rep, threshold, &mut dist_scratch)?.is_some()
                {
                    tallies[qi].measure();
                    match euclidean_early_abandon(&q.raw, &raws[i], safe_sq_bound(threshold))? {
                        Some(exact) => {
                            #[cfg(feature = "strict-invariants")]
                            crate::scheme::assert_lb_le_exact(q, rep, exact, 0.0)?;
                            heap.push(exact, i);
                        }
                        None => sapla_obs::counter!("index.knn.refine_abandoned"),
                    }
                } else {
                    tallies[qi].prune();
                }
                Ok(())
            })();
            if let Err(e) = step {
                // Queries are independent: keep the earliest query
                // index's error, matching the sequential loop.
                errored[qi] = true;
                if first_err.as_ref().is_none_or(|&(eq, _)| qi < eq) {
                    first_err = Some((qi, e));
                }
            }
        }
    }
    if let Some((_, e)) = first_err {
        return Err(e);
    }
    let mut out = Vec::with_capacity(queries.len());
    for (heap, tally) in results.iter_mut().zip(tallies) {
        let (retrieved, distances) = heap.drain_sorted();
        out.push(SearchStats {
            retrieved,
            distances,
            measured: tally.finish_knn(),
            total: raws.len(),
        })
    }
    Ok(out)
}

/// Exact ε-range search by scanning every series.
///
/// # Errors
///
/// Propagates length mismatches.
pub fn linear_scan_range(
    query: &TimeSeries,
    raws: &[TimeSeries],
    epsilon: f64,
) -> Result<SearchStats> {
    let mut hits: Vec<(f64, usize)> = Vec::new();
    let mut tally = SearchTally::default();
    tally.consider(raws.len());
    for (i, s) in raws.iter().enumerate() {
        tally.measure();
        if let Some(d) = euclidean_early_abandon(query, s, epsilon * epsilon)? {
            if d <= epsilon {
                hits.push((d, i));
            }
        }
    }
    hits.sort_by(|a, b| a.0.total_cmp(&b.0));
    Ok(SearchStats {
        retrieved: hits.iter().map(|&(_, i)| i).collect(),
        distances: hits.iter().map(|&(d, _)| d).collect(),
        measured: tally.finish_scan(),
        total: raws.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> Vec<TimeSeries> {
        (0..20)
            .map(|i| {
                TimeSeries::new((0..32).map(|t| ((t * (i + 2)) as f64 * 0.11).sin()).collect())
                    .unwrap()
            })
            .collect()
    }

    #[test]
    fn returns_true_knn() {
        let raws = dataset();
        let q = raws[4].clone();
        let stats = linear_scan_knn(&q, &raws, 3).unwrap();
        assert_eq!(stats.retrieved[0], 4);
        assert_eq!(stats.measured, 20);
        assert!((stats.pruning_power() - 1.0).abs() < 1e-12);
        // Verify ordering against brute force.
        let mut truth: Vec<(f64, usize)> =
            raws.iter().enumerate().map(|(i, s)| (q.euclidean(s).unwrap(), i)).collect();
        truth.sort_by(|a, b| a.0.total_cmp(&b.0));
        assert_eq!(stats.retrieved, truth[..3].iter().map(|&(_, i)| i).collect::<Vec<_>>());
    }

    #[test]
    fn accuracy_is_one_by_construction() {
        let raws = dataset();
        let q = raws[0].clone();
        let stats = linear_scan_knn(&q, &raws, 5).unwrap();
        let truth: Vec<usize> = stats.retrieved.clone();
        assert_eq!(stats.accuracy(&truth), 1.0);
    }

    #[test]
    fn range_scan_matches_definition() {
        let raws = dataset();
        let q = raws[4].clone();
        let got = linear_scan_range(&q, &raws, 1.5).unwrap();
        for (i, s) in raws.iter().enumerate() {
            let d = q.euclidean(s).unwrap();
            assert_eq!(got.retrieved.contains(&i), d <= 1.5, "series {i} at {d}");
        }
        assert!(got.distances.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn filtered_scan_matches_plain_scan_for_paa() {
        use sapla_baselines::{Paa, Reducer};
        let raws = dataset();
        let reps: Vec<Representation> = raws.iter().map(|s| Paa.reduce(s, 8).unwrap()).collect();
        let scheme = crate::scheme::scheme_for("PAA").unwrap();
        let q = Query::new(&raws[4], &Paa, 8).unwrap();
        let filtered = filtered_scan_knn(&q, &reps, &raws, 4, scheme.as_ref()).unwrap();
        let plain = linear_scan_knn(&raws[4], &raws, 4).unwrap();
        // PAA's bound is a true lower bound, so the filtered scan is exact
        // and can only measure fewer series.
        assert_eq!(filtered.retrieved, plain.retrieved);
        assert!(filtered.measured <= plain.measured);
    }

    #[test]
    fn candidate_major_batch_matches_sequential_scan_bitwise() {
        use sapla_baselines::{Reducer, SaplaReducer};
        let raws = dataset();
        let reducer = SaplaReducer::new();
        let reps: Vec<Representation> =
            raws.iter().map(|s| reducer.reduce(s, 12).unwrap()).collect();
        let scheme = crate::scheme::scheme_for("SAPLA").unwrap();
        let queries: Vec<Query> =
            raws[..7].iter().map(|r| Query::new(r, &reducer, 12).unwrap()).collect();
        let sequential: Vec<SearchStats> = queries
            .iter()
            .map(|q| filtered_scan_knn(q, &reps, &raws, 4, scheme.as_ref()).unwrap())
            .collect();
        let batch = filtered_scan_knn_batch(&queries, &reps, &raws, 4, scheme.as_ref()).unwrap();
        assert_eq!(batch, sequential);
        for (b, s) in batch.iter().zip(&sequential) {
            for (bd, sd) in b.distances.iter().zip(&s.distances) {
                assert_eq!(bd.to_bits(), sd.to_bits());
            }
        }
    }

    #[test]
    fn batch_scan_surfaces_earliest_query_error() {
        use sapla_baselines::{Reducer, SaplaReducer};
        let raws = dataset();
        let reducer = SaplaReducer::new();
        let reps: Vec<Representation> =
            raws.iter().map(|s| reducer.reduce(s, 12).unwrap()).collect();
        let scheme = crate::scheme::scheme_for("SAPLA").unwrap();
        // Two queries over a mismatched length; the earlier one's error
        // must win, exactly as a sequential per-query loop reports.
        let bad_a = TimeSeries::new((0..24).map(|t| (t as f64 * 0.3).sin()).collect()).unwrap();
        let bad_b = TimeSeries::new((0..40).map(|t| (t as f64 * 0.3).cos()).collect()).unwrap();
        let mut queries: Vec<Query> =
            raws[..5].iter().map(|r| Query::new(r, &reducer, 12).unwrap()).collect();
        queries[1] = Query::new(&bad_a, &reducer, 12).unwrap();
        queries[3] = Query::new(&bad_b, &reducer, 12).unwrap();
        let err = filtered_scan_knn_batch(&queries, &reps, &raws, 3, scheme.as_ref()).unwrap_err();
        match err {
            sapla_core::Error::LengthMismatch { left, right } => {
                assert!(left == 24 || right == 24, "expected query 1's mismatch (24 samples)");
            }
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn empty_database() {
        let q = TimeSeries::new(vec![1.0, 2.0]).unwrap();
        let stats = linear_scan_knn(&q, &[], 3).unwrap();
        assert!(stats.retrieved.is_empty());
        assert_eq!(stats.total, 0);
    }
}
