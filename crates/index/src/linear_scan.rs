//! Exact linear scan — the no-index baseline of Fig. 14b — plus the
//! GEMINI filtered scan (representation filter, exact refinement, no
//! tree), the third search path the planned-kernel equivalence tests
//! exercise.

use sapla_core::{Representation, Result, TimeSeries};
use sapla_distance::{euclidean_early_abandon, safe_sq_bound};

use crate::knn::{KnnHeap, SearchStats, SearchTally};
use crate::scheme::{Query, Scheme};

/// Exact k-NN by scanning every series (with early abandoning on the
/// running kth-best bound). `measured` equals the database size — linear
/// scan has no pruning power by definition.
///
/// # Errors
///
/// Propagates length mismatches.
pub fn linear_scan_knn(query: &TimeSeries, raws: &[TimeSeries], k: usize) -> Result<SearchStats> {
    let mut results = KnnHeap::new(k);
    let mut tally = SearchTally::default();
    tally.consider(raws.len());
    for (i, s) in raws.iter().enumerate() {
        let bound = results.threshold();
        tally.measure();
        if let Some(d) = euclidean_early_abandon(query, s, bound * bound)? {
            results.push(d, i);
        }
    }
    let (retrieved, distances) = results.into_sorted();
    Ok(SearchStats { retrieved, distances, measured: tally.finish_scan(), total: raws.len() })
}

/// GEMINI k-NN without a tree: scan every representation through the
/// scheme's pruned filter (planned `Dist_PAR` with early abandoning for
/// the adaptive schemes) and refine survivors exactly. The flat-scan
/// counterpart of the tree searches — same filter, no node bounds — so
/// it isolates the representation's pruning power from tree quality,
/// and serves as the third path in the planned-kernel equivalence
/// tests.
///
/// With valid lower bounds the retrieved set is the true k-NN; for the
/// adaptive schemes it inherits the conditional-bound caveat of
/// `Dist_PAR`.
///
/// # Errors
///
/// Propagates distance-computation failures.
pub fn filtered_scan_knn(
    q: &Query,
    reps: &[Representation],
    raws: &[TimeSeries],
    k: usize,
    scheme: &dyn Scheme,
) -> Result<SearchStats> {
    debug_assert_eq!(raws.len(), reps.len());
    let mut results = KnnHeap::new(k);
    let mut tally = SearchTally::default();
    let mut dist_scratch = sapla_distance::ParScratch::default();
    tally.consider(reps.len());
    for (i, rep) in reps.iter().enumerate() {
        let threshold = results.threshold();
        // Threshold ∞ (heap not yet full) ⇒ the filter cannot prune;
        // skip it, as the trees do. Strict-invariants builds keep it so
        // every candidate passes the lb ≤ exact audit.
        let skip_filter = threshold.is_infinite() && !cfg!(feature = "strict-invariants");
        if skip_filter || scheme.rep_dist_pruned(q, rep, threshold, &mut dist_scratch)?.is_some() {
            tally.measure();
            // Early-abandoning refinement, same contract as the trees:
            // abandoned ⇒ exact > threshold strictly ⇒ the push would be
            // popped straight back out, so skipping it changes nothing.
            match euclidean_early_abandon(&q.raw, &raws[i], safe_sq_bound(threshold))? {
                Some(exact) => {
                    #[cfg(feature = "strict-invariants")]
                    crate::scheme::assert_lb_le_exact(q, rep, exact)?;
                    results.push(exact, i);
                }
                None => sapla_obs::counter!("index.knn.refine_abandoned"),
            }
        } else {
            tally.prune();
        }
    }
    let (retrieved, distances) = results.into_sorted();
    Ok(SearchStats { retrieved, distances, measured: tally.finish_knn(), total: raws.len() })
}

/// Exact ε-range search by scanning every series.
///
/// # Errors
///
/// Propagates length mismatches.
pub fn linear_scan_range(
    query: &TimeSeries,
    raws: &[TimeSeries],
    epsilon: f64,
) -> Result<SearchStats> {
    let mut hits: Vec<(f64, usize)> = Vec::new();
    let mut tally = SearchTally::default();
    tally.consider(raws.len());
    for (i, s) in raws.iter().enumerate() {
        tally.measure();
        if let Some(d) = euclidean_early_abandon(query, s, epsilon * epsilon)? {
            if d <= epsilon {
                hits.push((d, i));
            }
        }
    }
    hits.sort_by(|a, b| a.0.total_cmp(&b.0));
    Ok(SearchStats {
        retrieved: hits.iter().map(|&(_, i)| i).collect(),
        distances: hits.iter().map(|&(d, _)| d).collect(),
        measured: tally.finish_scan(),
        total: raws.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> Vec<TimeSeries> {
        (0..20)
            .map(|i| {
                TimeSeries::new((0..32).map(|t| ((t * (i + 2)) as f64 * 0.11).sin()).collect())
                    .unwrap()
            })
            .collect()
    }

    #[test]
    fn returns_true_knn() {
        let raws = dataset();
        let q = raws[4].clone();
        let stats = linear_scan_knn(&q, &raws, 3).unwrap();
        assert_eq!(stats.retrieved[0], 4);
        assert_eq!(stats.measured, 20);
        assert!((stats.pruning_power() - 1.0).abs() < 1e-12);
        // Verify ordering against brute force.
        let mut truth: Vec<(f64, usize)> =
            raws.iter().enumerate().map(|(i, s)| (q.euclidean(s).unwrap(), i)).collect();
        truth.sort_by(|a, b| a.0.total_cmp(&b.0));
        assert_eq!(stats.retrieved, truth[..3].iter().map(|&(_, i)| i).collect::<Vec<_>>());
    }

    #[test]
    fn accuracy_is_one_by_construction() {
        let raws = dataset();
        let q = raws[0].clone();
        let stats = linear_scan_knn(&q, &raws, 5).unwrap();
        let truth: Vec<usize> = stats.retrieved.clone();
        assert_eq!(stats.accuracy(&truth), 1.0);
    }

    #[test]
    fn range_scan_matches_definition() {
        let raws = dataset();
        let q = raws[4].clone();
        let got = linear_scan_range(&q, &raws, 1.5).unwrap();
        for (i, s) in raws.iter().enumerate() {
            let d = q.euclidean(s).unwrap();
            assert_eq!(got.retrieved.contains(&i), d <= 1.5, "series {i} at {d}");
        }
        assert!(got.distances.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn filtered_scan_matches_plain_scan_for_paa() {
        use sapla_baselines::{Paa, Reducer};
        let raws = dataset();
        let reps: Vec<Representation> = raws.iter().map(|s| Paa.reduce(s, 8).unwrap()).collect();
        let scheme = crate::scheme::scheme_for("PAA").unwrap();
        let q = Query::new(&raws[4], &Paa, 8).unwrap();
        let filtered = filtered_scan_knn(&q, &reps, &raws, 4, scheme.as_ref()).unwrap();
        let plain = linear_scan_knn(&raws[4], &raws, 4).unwrap();
        // PAA's bound is a true lower bound, so the filtered scan is exact
        // and can only measure fewer series.
        assert_eq!(filtered.retrieved, plain.retrieved);
        assert!(filtered.measured <= plain.measured);
    }

    #[test]
    fn empty_database() {
        let q = TimeSeries::new(vec![1.0, 2.0]).unwrap();
        let stats = linear_scan_knn(&q, &[], 3).unwrap();
        assert!(stats.retrieved.is_empty());
        assert_eq!(stats.total, 0);
    }
}
