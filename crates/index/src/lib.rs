//! # sapla-index
//!
//! Memory-resident similarity-search indexes over reduced time series,
//! reproducing Section 5 of the SAPLA paper:
//!
//! * [`RTree`] — Guttman's R-tree over per-method feature MBRs (quadratic
//!   split, minimum-enlargement branch picking). For adaptive-length
//!   methods this uses the APCA-style MBR whose overlap problem the paper
//!   demonstrates.
//! * [`DbchTree`] — the paper's Distance-Based Covering with Convex Hull
//!   tree: node bounds are the two farthest member representations under
//!   `Dist_PAR`, and splitting/branch-picking/filtering all run on that
//!   distance.
//! * [`scheme`] — per-method indexing strategies (features, MINDIST,
//!   representation distances).
//! * [`knn`] / [`linear_scan`] — GEMINI best-first k-NN with exact
//!   refinement, plus the linear-scan baseline; pruning power (Eq. 14) and
//!   accuracy (Eq. 15) metrics.
//! * [`stats`] — tree-shape statistics for Figs. 15–16.
//! * [`parallel`] — work-stealing parallel ingest and multi-query k-NN
//!   over one tree, bit-for-bit equal to the sequential paths.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub(crate) mod batched;
pub mod dbch;
pub mod engine;
pub mod knn;
pub mod linear_scan;
pub mod parallel;
pub mod rect;
pub mod rtree;
pub mod scheme;
pub(crate) mod snapshot;
pub(crate) mod soa;
pub mod stats;

pub use batched::DEFAULT_QUERY_BLOCK;
pub use dbch::{DbchTree, NodeDistRule};
pub use engine::{Engine, EngineConfig, TreeKind};
pub use knn::{KnnScratch, SearchStats};
pub use linear_scan::{
    filtered_scan_knn, filtered_scan_knn_batch, linear_scan_knn, linear_scan_range,
};
pub use parallel::{ingest_parallel, knn_batch, knn_batch_with_block, prepare_queries, BatchStats};
pub use rect::HyperRect;
pub use rtree::RTree;
pub use scheme::{scheme_for, Query, Scheme};
pub use stats::TreeShape;
