//! Zero-copy engine persistence over the `sapla-store` arena container.
//!
//! A snapshot holds everything [`Engine`] needs to answer queries — raw
//! series, reduced representations, and every shard's fully-built tree —
//! as 64-byte-aligned, offset-addressed arenas of plain numeric data.
//! Loading therefore costs O(file size): the container is validated
//! (`SnapshotView::parse`), each arena is reinterpreted in place
//! (`sapla_store::view`), and the trees are adopted verbatim through
//! `from_raw_parts` structural validation plus one linear SoA-block
//! rebuild — no reduction, no O(n log n) insertion build, no per-record
//! decode loop for the hot coefficient arrays.
//!
//! # Arena schema (consumer side of the container)
//!
//! Global arenas (shard 0): [`K_META`]. Per shard `s`:
//!
//! | kind | element | contents |
//! |------|---------|----------|
//! | [`K_RAW_DATA`] | `f64` | raw samples, series-concatenated |
//! | [`K_RAW_LENS`] | `u64` | raw length per local series |
//! | [`K_REP_SPANS`] | `u64` | segment count per representation |
//! | [`K_REP_SLOPES`] / [`K_REP_INTERCEPTS`] | `f64` | exact SoA coefficients |
//! | [`K_REP_ENDPOINTS`] | `u64` | exact inclusive right endpoints |
//! | [`K_QREP_SLOPES`] / [`K_QREP_INTERCEPTS`] | `i32` | ε-quantized coefficients |
//! | [`K_QREP_ENDPOINT_DELTAS`] | `u32` | delta-coded endpoints (lossless) |
//! | [`K_QREP_SLACK`] | `f64` | per-representation `Dist_LB` slack `δ` |
//! | [`K_REP_BLOB`] | bytes | hardened-codec fallback for non-linear reps |
//! | [`K_TREE_NODES`] | `u64` | node records (stride 6 DBCH / 3 R-tree) |
//! | [`K_CHILD_IDS`] | `u64` | flat child / entry id arena |
//! | [`K_SHARD_META`] | `u64` | `[root, node count, rep count]` |
//! | [`K_RECT_SPANS`] / [`K_RECT_LO`] / [`K_RECT_HI`] | `u64` / `f64` | R-tree rectangles |
//! | [`K_FEATURE_SPANS`] / [`K_FEATURES`] | `u64` / `f64` | R-tree feature vectors |
//!
//! # Quantized leaves stay prunable
//!
//! With `quantize = Some(ε)`, slopes and intercepts are stored as
//! `round(x/ε)` in `i32` and endpoints are delta-coded **exactly**. The
//! dequantized representation `Ĉ~` shares `C`'s segmentation, so both
//! reconstruct into the same n-point space and the representation metric
//! obeys the triangle inequality across them:
//! `Dist_LB(Q, Ĉ~) ≤ Dist_LB(Q, C) + δ ≤ Dist(Q, C) + δ` where
//! `δ = √(Σ_j dist_s_sq(a_j, b_j, â_j, b̂_j, L_j))` is computed at write
//! time from the *actual* rounding deltas (not the ε·√n worst case).
//! Rounding moves coefficients in either direction, so the quantized
//! bound can **overshoot** the true distance by up to `δ` — a naive
//! `lb > threshold` prune over `Ĉ~` would be unsound. The per-shard
//! maximum `δ` therefore rides along as [`K_QREP_SLACK`] and every
//! pruning comparison in the loaded tree (node hull bounds and the leaf
//! representation filter alike) is widened by it: a candidate is
//! dismissed only when `lb > threshold + δ`, i.e. when even the true
//! lower bound `lb − δ` rules it out. Since `Dist_LB(Q, Ĉ~) ≤
//! Dist(Q, C) + δ`, every candidate the quantized tree prunes would
//! also have been pruned by the exact tree at the same threshold —
//! quantization never introduces new misses, and refinement reads the
//! bit-preserved raw series, so answers match the exact tree's
//! wherever the underlying scheme/rule bounds are unconditional. The
//! same `δ` also widens the strict-invariants `Dist_LB ≤ exact` audit.
//! Node hull volumes are recomputed over the dequantized reps at write
//! time so the stored tree is self-consistent.

use std::path::Path;
use std::sync::Arc;

use sapla_baselines::{all_reducers, Reducer};
use sapla_core::codec::{decode_collection, encode_collection};
use sapla_core::repr::{LinearSegment, PiecewiseLinear};
use sapla_core::{Error, Representation, Result, TimeSeries};
use sapla_store::{
    put_f64s, put_i32s, put_u32s, put_u64s, view, ArenaWriter, SnapshotBytes, SnapshotView,
};

use crate::dbch::{DbchTree, NodeDistRule, RawDbchNode};
use crate::engine::{Engine, EngineConfig, Shard, ShardIndex, TreeKind};
use crate::rtree::{RTree, RawRtreeNode};
use crate::scheme::{scheme_for, Scheme};

/// Global engine metadata (method, config, quantization step).
pub(crate) const K_META: u32 = 1;
/// Raw samples, `f64`, series-concatenated in local-id order.
pub(crate) const K_RAW_DATA: u32 = 10;
/// Raw series lengths, `u64`, one per local id.
pub(crate) const K_RAW_LENS: u32 = 11;
/// Exact SoA slopes, `f64`, segment-concatenated.
pub(crate) const K_REP_SLOPES: u32 = 20;
/// Exact SoA intercepts, `f64`.
pub(crate) const K_REP_INTERCEPTS: u32 = 21;
/// Exact inclusive right endpoints, `u64`.
pub(crate) const K_REP_ENDPOINTS: u32 = 22;
/// Segment count per representation, `u64`.
pub(crate) const K_REP_SPANS: u32 = 23;
/// ε-quantized slopes, `i32`.
pub(crate) const K_QREP_SLOPES: u32 = 24;
/// ε-quantized intercepts, `i32`.
pub(crate) const K_QREP_INTERCEPTS: u32 = 25;
/// Delta-coded endpoints, `u32` (first delta is `r_0` itself).
pub(crate) const K_QREP_ENDPOINT_DELTAS: u32 = 26;
/// Per-representation quantization slack `δ`, `f64`.
pub(crate) const K_QREP_SLACK: u32 = 27;
/// Hardened-codec blob for non-linear representation collections.
pub(crate) const K_REP_BLOB: u32 = 28;
/// Tree node records, `u64` (stride 6 for DBCH, 3 for the R-tree).
pub(crate) const K_TREE_NODES: u32 = 30;
/// Flat child / leaf-entry id arena, `u64`.
pub(crate) const K_CHILD_IDS: u32 = 31;
/// `[root, node count, rep count]`, `u64`.
pub(crate) const K_SHARD_META: u32 = 32;
/// R-tree rectangle lower corners, `f64`, node-concatenated.
pub(crate) const K_RECT_LO: u32 = 40;
/// R-tree rectangle upper corners, `f64`.
pub(crate) const K_RECT_HI: u32 = 41;
/// Rectangle dimensionality per node, `u64`.
pub(crate) const K_RECT_SPANS: u32 = 42;
/// R-tree feature vectors, `f64`, rep-concatenated.
pub(crate) const K_FEATURES: u32 = 43;
/// Feature dimensionality per rep, `u64`.
pub(crate) const K_FEATURE_SPANS: u32 = 44;

/// Container header flag bit 0: leaf coefficients are ε-quantized.
pub(crate) const FLAG_QUANTIZED: u32 = 1;

const DBCH_NODE_STRIDE: usize = 6;
const RTREE_NODE_STRIDE: usize = 3;

fn corrupt(reason: &'static str) -> Error {
    Error::CorruptIndex { reason }
}

fn unsupported(operation: &'static str) -> Error {
    Error::UnsupportedRepresentation { operation }
}

fn to_usize(v: u64, what: &'static str) -> Result<usize> {
    usize::try_from(v).map_err(|_| Error::CorruptIndex { reason: what })
}

// ---------------------------------------------------------------------
// META arena
// ---------------------------------------------------------------------

struct Meta {
    tree: TreeKind,
    rule: NodeDistRule,
    m: usize,
    min_fill: usize,
    max_fill: usize,
    shards: usize,
    total: usize,
    quant_step: f64,
    method: String,
}

fn encode_meta(engine: &Engine, quant_step: f64) -> Vec<u8> {
    let cfg = engine.cfg;
    let mut out = Vec::new();
    put_u32s(
        &mut out,
        [
            match cfg.tree {
                TreeKind::Dbch => 0u32,
                TreeKind::Rtree => 1,
            },
            match cfg.rule {
                NodeDistRule::Paper => 0u32,
                NodeDistRule::Triangle => 1,
            },
        ],
    );
    put_u64s(
        &mut out,
        [
            cfg.m as u64,
            cfg.min_fill as u64,
            cfg.max_fill as u64,
            cfg.shards as u64,
            engine.total as u64,
        ],
    );
    put_f64s(&mut out, [quant_step]);
    let method = engine.reducer.name().as_bytes();
    // audit: cast_ok — reducer names are short static identifiers, far below u32::MAX.
    put_u32s(&mut out, [method.len() as u32]);
    out.extend_from_slice(method);
    out
}

/// A bounds-checked little-endian byte cursor for the META arena.
struct Cursor<'a> {
    data: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(data: &'a [u8]) -> Self {
        Self { data, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&end| end <= self.data.len())
            .ok_or_else(|| corrupt("snapshot metadata truncated"))?;
        let out = &self.data[self.at..end];
        self.at = end;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32> {
        let mut b = [0u8; 4];
        b.copy_from_slice(self.take(4)?);
        Ok(u32::from_le_bytes(b))
    }

    fn u64(&mut self) -> Result<u64> {
        let mut b = [0u8; 8];
        b.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(b))
    }

    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn finish(self) -> Result<()> {
        if self.at != self.data.len() {
            return Err(corrupt("snapshot metadata has trailing bytes"));
        }
        Ok(())
    }
}

fn parse_meta(data: &[u8]) -> Result<Meta> {
    let mut c = Cursor::new(data);
    let tree = match c.u32()? {
        0 => TreeKind::Dbch,
        1 => TreeKind::Rtree,
        _ => return Err(corrupt("snapshot metadata names an unknown tree kind")),
    };
    let rule = match c.u32()? {
        0 => NodeDistRule::Paper,
        1 => NodeDistRule::Triangle,
        _ => return Err(corrupt("snapshot metadata names an unknown node-distance rule")),
    };
    let m = to_usize(c.u64()?, "snapshot coefficient budget overflows")?;
    let min_fill = to_usize(c.u64()?, "snapshot min fill overflows")?;
    let max_fill = to_usize(c.u64()?, "snapshot max fill overflows")?;
    let shards = to_usize(c.u64()?, "snapshot shard count overflows")?;
    let total = to_usize(c.u64()?, "snapshot record count overflows")?;
    let quant_step = c.f64()?;
    let method_len = to_usize(u64::from(c.u32()?), "snapshot method name overflows")?;
    let method = String::from_utf8(c.take(method_len)?.to_vec())
        .map_err(|_| corrupt("snapshot method name is not UTF-8"))?;
    c.finish()?;
    Ok(Meta { tree, rule, m, min_fill, max_fill, shards, total, quant_step, method })
}

// ---------------------------------------------------------------------
// Write path
// ---------------------------------------------------------------------

/// `round(x / step)` as `i32`, rejecting overflow instead of wrapping.
fn quantize_coeff(x: f64, step: f64) -> Result<i32> {
    let q = (x / step).round();
    if !q.is_finite() || q < f64::from(i32::MIN) || q > f64::from(i32::MAX) {
        return Err(Error::MalformedRepresentation {
            reason: "coefficient overflows the quantized snapshot range",
        });
    }
    // audit: cast_ok — range-checked against i32::MIN..=i32::MAX just above.
    Ok(q as i32)
}

/// Per-shard quantized rep arenas plus the data the tree writer needs.
struct QuantizedReps {
    spans: Vec<u8>,
    slopes: Vec<u8>,
    intercepts: Vec<u8>,
    deltas: Vec<u8>,
    slack: Vec<u8>,
    /// Dequantized reps (what a loader will materialize) — hull volumes
    /// are recomputed over these so the stored tree is self-consistent.
    dequantized: Vec<Representation>,
}

fn quantize_reps(reps: &[Representation], step: f64) -> Result<QuantizedReps> {
    let mut out = QuantizedReps {
        spans: Vec::new(),
        slopes: Vec::new(),
        intercepts: Vec::new(),
        deltas: Vec::new(),
        slack: Vec::new(),
        dequantized: Vec::with_capacity(reps.len()),
    };
    for rep in reps {
        let lin = rep.as_linear().ok_or_else(|| {
            unsupported("quantized snapshot leaves require piecewise-linear representations")
        })?;
        put_u64s(&mut out.spans, [lin.num_segments() as u64]);
        let mut acc = 0.0f64;
        let mut prev_r: Option<usize> = None;
        let mut dq_segs = Vec::with_capacity(lin.num_segments());
        for (j, seg) in lin.segments().iter().enumerate() {
            let qa = quantize_coeff(seg.a, step)?;
            let qb = quantize_coeff(seg.b, step)?;
            let da = f64::from(qa) * step;
            let db = f64::from(qb) * step;
            // The exact perturbation this segment contributes to
            // ‖recon(C) − recon(Ĉ~)‖²: both lines live on the same
            // window because endpoints are preserved losslessly.
            acc += sapla_distance::dist_s_sq(seg.a, seg.b, da, db, lin.seg_len(j));
            let delta = match prev_r {
                None => seg.r,
                Some(p) => seg.r - p,
            };
            let delta = u32::try_from(delta).map_err(|_| {
                unsupported("segment endpoint exceeds the quantized snapshot's delta range")
            })?;
            put_i32s(&mut out.slopes, [qa]);
            put_i32s(&mut out.intercepts, [qb]);
            put_u32s(&mut out.deltas, [delta]);
            prev_r = Some(seg.r);
            dq_segs.push(LinearSegment { a: da, b: db, r: seg.r });
        }
        put_f64s(&mut out.slack, [acc.sqrt()]);
        out.dequantized.push(Representation::Linear(PiecewiseLinear::new(dq_segs)?));
    }
    Ok(out)
}

/// The four SoA arenas of an exact linear-rep shard, as raw bytes:
/// spans, slopes, intercepts, endpoints.
type ExactRepArenas = (Vec<u8>, Vec<u8>, Vec<u8>, Vec<u8>);

/// Exact SoA rep arenas (bit-preserving: coefficients round-trip as raw
/// `f64` bits).
fn exact_rep_arenas(reps: &[Representation]) -> Option<ExactRepArenas> {
    let mut spans = Vec::new();
    let mut slopes = Vec::new();
    let mut intercepts = Vec::new();
    let mut endpoints = Vec::new();
    for rep in reps {
        let lin = rep.as_linear()?;
        put_u64s(&mut spans, [lin.num_segments() as u64]);
        put_f64s(&mut slopes, lin.segments().iter().map(|s| s.a));
        put_f64s(&mut intercepts, lin.segments().iter().map(|s| s.b));
        put_u64s(&mut endpoints, lin.segments().iter().map(|s| s.r as u64));
    }
    Some((spans, slopes, intercepts, endpoints))
}

fn push_dbch_tree(
    w: &mut ArenaWriter,
    shard: u32,
    root: usize,
    raw: &[RawDbchNode],
    n_reps: usize,
    volumes: Option<&[f64]>,
) -> Result<()> {
    let mut nodes = Vec::new();
    let mut children = Vec::new();
    let mut child_ids: Vec<u64> = Vec::new();
    for (i, n) in raw.iter().enumerate() {
        let volume = volumes.map_or(n.volume, |v| v[i]);
        put_u64s(
            &mut nodes,
            [
                u64::from(n.is_leaf),
                child_ids.len() as u64,
                n.ids.len() as u64,
                n.hull_u as u64,
                n.hull_l as u64,
                volume.to_bits(),
            ],
        );
        child_ids.extend(n.ids.iter().map(|&id| id as u64));
    }
    put_u64s(&mut children, child_ids.iter().copied());
    w.push_arena(K_TREE_NODES, shard, &nodes)?;
    w.push_arena(K_CHILD_IDS, shard, &children)?;
    let mut sm = Vec::new();
    put_u64s(&mut sm, [root as u64, raw.len() as u64, n_reps as u64]);
    w.push_arena(K_SHARD_META, shard, &sm)
}

fn push_rtree_tree(w: &mut ArenaWriter, shard: u32, tree: &RTree, n_reps: usize) -> Result<()> {
    let raw = tree.raw_nodes();
    let mut nodes = Vec::new();
    let mut children = Vec::new();
    let mut child_ids: Vec<u64> = Vec::new();
    let mut rect_spans = Vec::new();
    let mut rect_lo = Vec::new();
    let mut rect_hi = Vec::new();
    for n in &raw {
        put_u64s(&mut nodes, [u64::from(n.is_leaf), child_ids.len() as u64, n.ids.len() as u64]);
        child_ids.extend(n.ids.iter().map(|&id| id as u64));
        put_u64s(&mut rect_spans, [n.rect_lo.len() as u64]);
        put_f64s(&mut rect_lo, n.rect_lo.iter().copied());
        put_f64s(&mut rect_hi, n.rect_hi.iter().copied());
    }
    put_u64s(&mut children, child_ids.iter().copied());
    let mut features = Vec::new();
    let mut feature_spans = Vec::new();
    for f in tree.feature_vectors() {
        put_u64s(&mut feature_spans, [f.len() as u64]);
        put_f64s(&mut features, f.iter().copied());
    }
    w.push_arena(K_TREE_NODES, shard, &nodes)?;
    w.push_arena(K_CHILD_IDS, shard, &children)?;
    w.push_arena(K_RECT_SPANS, shard, &rect_spans)?;
    w.push_arena(K_RECT_LO, shard, &rect_lo)?;
    w.push_arena(K_RECT_HI, shard, &rect_hi)?;
    w.push_arena(K_FEATURE_SPANS, shard, &feature_spans)?;
    w.push_arena(K_FEATURES, shard, &features)?;
    let mut sm = Vec::new();
    put_u64s(&mut sm, [tree.root_id() as u64, raw.len() as u64, n_reps as u64]);
    w.push_arena(K_SHARD_META, shard, &sm)
}

pub(crate) fn write_image(engine: &Engine, quantize: Option<f64>) -> Result<Vec<u8>> {
    if let Some(step) = quantize {
        if !step.is_finite() || step <= 0.0 {
            return Err(unsupported("quantization step must be finite and positive"));
        }
        if engine.cfg.tree != TreeKind::Dbch {
            // R-tree rectangles are derived from exact features; serving
            // them over perturbed reps would break MINDIST containment.
            return Err(unsupported("quantized snapshot leaves require the DBCH tree"));
        }
    }
    let flags = if quantize.is_some() { FLAG_QUANTIZED } else { 0 };
    let mut w = ArenaWriter::new(flags);
    w.push_arena(K_META, 0, &encode_meta(engine, quantize.unwrap_or(0.0)))?;
    for (si, shard) in engine.shards.iter().enumerate() {
        let s = u32::try_from(si).map_err(|_| corrupt("too many shards for a snapshot"))?;
        let mut lens = Vec::new();
        let mut data = Vec::new();
        for raw in &shard.raws {
            put_u64s(&mut lens, [raw.len() as u64]);
            put_f64s(&mut data, raw.values().iter().copied());
        }
        w.push_arena(K_RAW_LENS, s, &lens)?;
        w.push_arena(K_RAW_DATA, s, &data)?;
        let reps = shard.index.reps();
        match (&shard.index, quantize) {
            (ShardIndex::Dbch(tree), Some(step)) => {
                let q = quantize_reps(reps, step)?;
                w.push_arena(K_REP_SPANS, s, &q.spans)?;
                w.push_arena(K_QREP_SLOPES, s, &q.slopes)?;
                w.push_arena(K_QREP_INTERCEPTS, s, &q.intercepts)?;
                w.push_arena(K_QREP_ENDPOINT_DELTAS, s, &q.deltas)?;
                w.push_arena(K_QREP_SLACK, s, &q.slack)?;
                // Recompute hull volumes over the dequantized reps the
                // loader will materialize: the stored tree must be
                // self-consistent under *its own* leaf coefficients.
                let raw = tree.raw_nodes();
                let mut volumes = Vec::with_capacity(raw.len());
                for n in &raw {
                    volumes.push(if q.dequantized.is_empty() {
                        n.volume
                    } else {
                        engine
                            .scheme
                            .pair_dist(&q.dequantized[n.hull_u], &q.dequantized[n.hull_l])?
                    });
                }
                push_dbch_tree(&mut w, s, tree.root_id(), &raw, reps.len(), Some(&volumes))?;
            }
            (ShardIndex::Dbch(tree), None) => {
                match exact_rep_arenas(reps) {
                    Some((spans, slopes, intercepts, endpoints)) => {
                        w.push_arena(K_REP_SPANS, s, &spans)?;
                        w.push_arena(K_REP_SLOPES, s, &slopes)?;
                        w.push_arena(K_REP_INTERCEPTS, s, &intercepts)?;
                        w.push_arena(K_REP_ENDPOINTS, s, &endpoints)?;
                    }
                    None => w.push_arena(K_REP_BLOB, s, &encode_collection(reps)?)?,
                }
                push_dbch_tree(&mut w, s, tree.root_id(), &tree.raw_nodes(), reps.len(), None)?;
            }
            (ShardIndex::Rtree(tree), _) => {
                match exact_rep_arenas(reps) {
                    Some((spans, slopes, intercepts, endpoints)) => {
                        w.push_arena(K_REP_SPANS, s, &spans)?;
                        w.push_arena(K_REP_SLOPES, s, &slopes)?;
                        w.push_arena(K_REP_INTERCEPTS, s, &intercepts)?;
                        w.push_arena(K_REP_ENDPOINTS, s, &endpoints)?;
                    }
                    None => w.push_arena(K_REP_BLOB, s, &encode_collection(reps)?)?,
                }
                push_rtree_tree(&mut w, s, tree, reps.len())?;
            }
        }
    }
    Ok(w.finish())
}

pub(crate) fn write_file(engine: &Engine, path: &Path, quantize: Option<f64>) -> Result<u64> {
    let image = write_image(engine, quantize)?;
    std::fs::write(path, &image)
        .map_err(|e| Error::Io { path: path.display().to_string(), message: e.to_string() })?;
    Ok(image.len() as u64)
}

// ---------------------------------------------------------------------
// Load path
// ---------------------------------------------------------------------

/// Sum `spans` with overflow checking and verify the per-element arena
/// holds exactly that many elements.
fn checked_total(spans: &[u64], have: usize, what: &'static str) -> Result<usize> {
    let mut total = 0usize;
    for &s in spans {
        total =
            to_usize(s, what)?.checked_add(total).ok_or(Error::CorruptIndex { reason: what })?;
    }
    if total != have {
        return Err(Error::CorruptIndex { reason: what });
    }
    Ok(total)
}

fn load_exact_reps(v: &SnapshotView<'_>, s: u32, n_reps: usize) -> Result<Vec<Representation>> {
    if let Some(blob) = v.arena_opt(K_REP_BLOB, s) {
        let reps = decode_collection(blob)?;
        if reps.len() != n_reps {
            return Err(corrupt("snapshot rep blob disagrees with the shard record count"));
        }
        return Ok(reps);
    }
    let spans = view::u64s(v.arena(K_REP_SPANS, s)?)?;
    if spans.len() != n_reps {
        return Err(corrupt("snapshot rep spans disagree with the shard record count"));
    }
    let slopes = view::f64s(v.arena(K_REP_SLOPES, s)?)?;
    let intercepts = view::f64s(v.arena(K_REP_INTERCEPTS, s)?)?;
    let endpoints = view::u64s(v.arena(K_REP_ENDPOINTS, s)?)?;
    checked_total(spans, slopes.len(), "snapshot slope arena disagrees with the rep spans")?;
    if intercepts.len() != slopes.len() || endpoints.len() != slopes.len() {
        return Err(corrupt("snapshot coefficient arenas disagree in length"));
    }
    let mut reps = Vec::with_capacity(n_reps);
    let mut at = 0usize;
    for &span in spans {
        let span = to_usize(span, "snapshot rep span overflows")?;
        let mut segs = Vec::with_capacity(span);
        for j in at..at + span {
            let r = to_usize(endpoints[j], "snapshot segment endpoint overflows")?;
            segs.push(LinearSegment { a: slopes[j], b: intercepts[j], r });
        }
        at += span;
        reps.push(Representation::Linear(
            PiecewiseLinear::new(segs)
                .map_err(|_| corrupt("snapshot representation has malformed segment endpoints"))?,
        ));
    }
    Ok(reps)
}

/// Returns the dequantized reps plus the shard's `Dist_LB` slack (the
/// maximum stored per-rep `δ`).
fn load_quantized_reps(
    v: &SnapshotView<'_>,
    s: u32,
    n_reps: usize,
    step: f64,
) -> Result<(Vec<Representation>, f64)> {
    if !step.is_finite() || step <= 0.0 {
        return Err(corrupt("quantized snapshot has a non-positive quantization step"));
    }
    let spans = view::u64s(v.arena(K_REP_SPANS, s)?)?;
    if spans.len() != n_reps {
        return Err(corrupt("snapshot rep spans disagree with the shard record count"));
    }
    let slopes = view::i32s(v.arena(K_QREP_SLOPES, s)?)?;
    let intercepts = view::i32s(v.arena(K_QREP_INTERCEPTS, s)?)?;
    let deltas = view::u32s(v.arena(K_QREP_ENDPOINT_DELTAS, s)?)?;
    let slack = view::f64s(v.arena(K_QREP_SLACK, s)?)?;
    checked_total(spans, slopes.len(), "snapshot slope arena disagrees with the rep spans")?;
    if intercepts.len() != slopes.len() || deltas.len() != slopes.len() {
        return Err(corrupt("snapshot coefficient arenas disagree in length"));
    }
    if slack.len() != n_reps {
        return Err(corrupt("snapshot slack arena disagrees with the shard record count"));
    }
    let mut reps = Vec::with_capacity(n_reps);
    let mut shard_slack = 0.0f64;
    for &d in slack {
        if !d.is_finite() || d < 0.0 {
            return Err(corrupt("snapshot slack is not a finite non-negative value"));
        }
        shard_slack = shard_slack.max(d);
    }
    let mut at = 0usize;
    for &span in spans {
        let span = to_usize(span, "snapshot rep span overflows")?;
        let mut segs = Vec::with_capacity(span);
        let mut r = 0u64;
        for j in at..at + span {
            // First delta is r_0 itself; later deltas must be ≥ 1 for
            // strictly increasing endpoints (PiecewiseLinear re-checks).
            r = r
                .checked_add(u64::from(deltas[j]))
                .ok_or_else(|| corrupt("snapshot segment endpoint overflows"))?;
            segs.push(LinearSegment {
                a: f64::from(slopes[j]) * step,
                b: f64::from(intercepts[j]) * step,
                r: to_usize(r, "snapshot segment endpoint overflows")?,
            });
        }
        at += span;
        reps.push(Representation::Linear(
            PiecewiseLinear::new(segs)
                .map_err(|_| corrupt("snapshot representation has malformed segment endpoints"))?,
        ));
    }
    Ok((reps, shard_slack))
}

fn load_raws(v: &SnapshotView<'_>, s: u32, n_reps: usize) -> Result<Vec<TimeSeries>> {
    let lens = view::u64s(v.arena(K_RAW_LENS, s)?)?;
    if lens.len() != n_reps {
        return Err(corrupt("snapshot raw lengths disagree with the shard record count"));
    }
    let data = view::f64s(v.arena(K_RAW_DATA, s)?)?;
    checked_total(lens, data.len(), "snapshot raw arena disagrees with the raw lengths")?;
    let mut raws = Vec::with_capacity(n_reps);
    let mut at = 0usize;
    for &len in lens {
        let len = to_usize(len, "snapshot raw length overflows")?;
        raws.push(TimeSeries::new(data[at..at + len].to_vec())?);
        at += len;
    }
    Ok(raws)
}

fn load_dbch_nodes(v: &SnapshotView<'_>, s: u32, n_nodes: usize) -> Result<Vec<RawDbchNode>> {
    let words = view::u64s(v.arena(K_TREE_NODES, s)?)?;
    if words.len() != n_nodes * DBCH_NODE_STRIDE {
        return Err(corrupt("snapshot node arena disagrees with the shard node count"));
    }
    let children = view::u64s(v.arena(K_CHILD_IDS, s)?)?;
    let mut raw = Vec::with_capacity(n_nodes);
    for rec in words.chunks_exact(DBCH_NODE_STRIDE) {
        let is_leaf = match rec[0] {
            0 => false,
            1 => true,
            _ => return Err(corrupt("snapshot node record has an unknown kind tag")),
        };
        let off = to_usize(rec[1], "snapshot child offset overflows")?;
        let len = to_usize(rec[2], "snapshot child count overflows")?;
        let ids = children
            .get(
                off..off
                    .checked_add(len)
                    .ok_or_else(|| corrupt("snapshot child count overflows"))?,
            )
            .ok_or_else(|| corrupt("snapshot node children outside the id arena"))?;
        raw.push(RawDbchNode {
            is_leaf,
            ids: ids
                .iter()
                .map(|&id| to_usize(id, "snapshot child id overflows"))
                .collect::<Result<Vec<_>>>()?,
            hull_u: to_usize(rec[3], "snapshot hull endpoint overflows")?,
            hull_l: to_usize(rec[4], "snapshot hull endpoint overflows")?,
            volume: f64::from_bits(rec[5]),
        });
    }
    Ok(raw)
}

fn load_rtree_nodes(v: &SnapshotView<'_>, s: u32, n_nodes: usize) -> Result<Vec<RawRtreeNode>> {
    let words = view::u64s(v.arena(K_TREE_NODES, s)?)?;
    if words.len() != n_nodes * RTREE_NODE_STRIDE {
        return Err(corrupt("snapshot node arena disagrees with the shard node count"));
    }
    let children = view::u64s(v.arena(K_CHILD_IDS, s)?)?;
    let rect_spans = view::u64s(v.arena(K_RECT_SPANS, s)?)?;
    if rect_spans.len() != n_nodes {
        return Err(corrupt("snapshot rectangle spans disagree with the shard node count"));
    }
    let rect_lo = view::f64s(v.arena(K_RECT_LO, s)?)?;
    let rect_hi = view::f64s(v.arena(K_RECT_HI, s)?)?;
    checked_total(rect_spans, rect_lo.len(), "snapshot rectangle arena disagrees with its spans")?;
    if rect_hi.len() != rect_lo.len() {
        return Err(corrupt("snapshot rectangle lo/hi arenas disagree in length"));
    }
    let mut raw = Vec::with_capacity(n_nodes);
    let mut rect_at = 0usize;
    for (ni, rec) in words.chunks_exact(RTREE_NODE_STRIDE).enumerate() {
        let is_leaf = match rec[0] {
            0 => false,
            1 => true,
            _ => return Err(corrupt("snapshot node record has an unknown kind tag")),
        };
        let off = to_usize(rec[1], "snapshot child offset overflows")?;
        let len = to_usize(rec[2], "snapshot child count overflows")?;
        let ids = children
            .get(
                off..off
                    .checked_add(len)
                    .ok_or_else(|| corrupt("snapshot child count overflows"))?,
            )
            .ok_or_else(|| corrupt("snapshot node children outside the id arena"))?;
        let dims = to_usize(rect_spans[ni], "snapshot rectangle span overflows")?;
        raw.push(RawRtreeNode {
            is_leaf,
            ids: ids
                .iter()
                .map(|&id| to_usize(id, "snapshot child id overflows"))
                .collect::<Result<Vec<_>>>()?,
            rect_lo: rect_lo[rect_at..rect_at + dims].to_vec(),
            rect_hi: rect_hi[rect_at..rect_at + dims].to_vec(),
        });
        rect_at += dims;
    }
    Ok(raw)
}

fn load_features(v: &SnapshotView<'_>, s: u32, n_reps: usize) -> Result<Vec<Vec<f64>>> {
    let spans = view::u64s(v.arena(K_FEATURE_SPANS, s)?)?;
    if spans.len() != n_reps {
        return Err(corrupt("snapshot feature spans disagree with the shard record count"));
    }
    let data = view::f64s(v.arena(K_FEATURES, s)?)?;
    checked_total(spans, data.len(), "snapshot feature arena disagrees with its spans")?;
    let mut features = Vec::with_capacity(n_reps);
    let mut at = 0usize;
    for &span in spans {
        let span = to_usize(span, "snapshot feature span overflows")?;
        features.push(data[at..at + span].to_vec());
        at += span;
    }
    Ok(features)
}

pub(crate) fn load_image(data: &[u8]) -> Result<Engine> {
    let v = SnapshotView::parse(data)?;
    if v.flags() & !FLAG_QUANTIZED != 0 {
        return Err(corrupt("snapshot carries unknown header flags"));
    }
    let quantized = v.flags() & FLAG_QUANTIZED != 0;
    let meta = parse_meta(v.arena(K_META, 0)?)?;
    if quantized && meta.tree != TreeKind::Dbch {
        return Err(corrupt("quantized snapshot names a non-DBCH tree"));
    }
    let scheme: Arc<dyn Scheme> = Arc::from(scheme_for(&meta.method)?);
    let reducer: Arc<dyn Reducer> = Arc::from(
        all_reducers()
            .into_iter()
            .find(|r| r.name().eq_ignore_ascii_case(&meta.method))
            .ok_or_else(|| Error::UnknownMethod { name: meta.method.clone() })?,
    );
    let n_shards = meta.shards.max(1);
    let mut shards: Vec<Shard> = Vec::with_capacity(n_shards);
    let mut seen = 0usize;
    let mut lb_slack = 0.0f64;
    for si in 0..n_shards {
        let s = u32::try_from(si).map_err(|_| corrupt("snapshot shard count overflows"))?;
        let sm = view::u64s(v.arena(K_SHARD_META, s)?)?;
        if sm.len() != 3 {
            return Err(corrupt("snapshot shard metadata has the wrong arity"));
        }
        let root = to_usize(sm[0], "snapshot root id overflows")?;
        let n_nodes = to_usize(sm[1], "snapshot node count overflows")?;
        let n_reps = to_usize(sm[2], "snapshot record count overflows")?;
        // Round-robin placement is part of the engine contract: global
        // id g lives in shard g % S at local id g / S.
        let expect = meta.total / n_shards + usize::from(si < meta.total % n_shards);
        if n_reps != expect {
            return Err(corrupt("snapshot shard sizes break round-robin placement"));
        }
        seen += n_reps;
        let raws = load_raws(&v, s, n_reps)?;
        let (reps, shard_slack) = if quantized {
            load_quantized_reps(&v, s, n_reps, meta.quant_step)?
        } else {
            (load_exact_reps(&v, s, n_reps)?, 0.0)
        };
        lb_slack = lb_slack.max(shard_slack);
        let index = match meta.tree {
            TreeKind::Dbch => {
                let raw = load_dbch_nodes(&v, s, n_nodes)?;
                ShardIndex::Dbch(DbchTree::from_raw_parts(
                    meta.min_fill,
                    meta.max_fill,
                    meta.rule,
                    root,
                    raw,
                    reps,
                    shard_slack,
                )?)
            }
            TreeKind::Rtree => {
                let raw = load_rtree_nodes(&v, s, n_nodes)?;
                let features = load_features(&v, s, n_reps)?;
                ShardIndex::Rtree(RTree::from_raw_parts(
                    meta.min_fill,
                    meta.max_fill,
                    root,
                    raw,
                    reps,
                    features,
                )?)
            }
        };
        shards.push(Shard { index, raws });
    }
    if seen != meta.total {
        return Err(corrupt("snapshot shard sizes do not sum to the record count"));
    }
    let cfg = EngineConfig {
        tree: meta.tree,
        m: meta.m,
        min_fill: meta.min_fill,
        max_fill: meta.max_fill,
        shards: meta.shards,
        rule: meta.rule,
    };
    Ok(Engine { cfg, scheme, reducer, shards, total: meta.total, lb_slack })
}

pub(crate) fn load_file(path: &Path) -> Result<Engine> {
    let owned = SnapshotBytes::read_file(path)?;
    load_image(owned.bytes())
}
