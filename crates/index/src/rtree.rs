//! The classic R-tree (Guttman, SIGMOD 1984) over per-method feature
//! MBRs — the baseline index the DBCH-tree is compared against.
//!
//! Node splitting uses Guttman's quadratic algorithm (minimum combined
//! dead area), branch picking the minimum area enlargement. k-NN search is
//! best-first (GEMINI): nodes are filtered with the scheme's MINDIST,
//! entries with the scheme's representation distance, and survivors are
//! refined against the raw series.

use std::cmp::Reverse;

use sapla_core::{OrdF64, Representation, Result, TimeSeries};
use sapla_distance::{euclidean_early_abandon, safe_sq_bound};

use crate::knn::{KnnScratch, SearchStats, SearchTally};
use crate::rect::HyperRect;
use crate::scheme::{Query, Scheme};
use crate::soa::LeafBlock;
use crate::stats::TreeShape;

#[derive(Debug, Clone)]
enum NodeKind {
    /// Child node ids.
    Internal(Vec<usize>),
    /// Entry ids.
    Leaf(Vec<usize>),
}

#[derive(Debug, Clone)]
struct Node {
    rect: HyperRect,
    kind: NodeKind,
}

/// One node of an [`RTree`] in exported, layout-stable form — the unit
/// the snapshot writer persists and [`RTree::from_raw_parts`] consumes.
/// Node ids are positions in the exported arena, preserved verbatim so
/// a reloaded tree replays searches bit-for-bit.
#[derive(Debug, Clone)]
pub(crate) struct RawRtreeNode {
    /// Leaf (entry ids) or internal (child node ids)?
    pub is_leaf: bool,
    /// Children ids (internal) or entry ids (leaf).
    pub ids: Vec<usize>,
    /// Bounding rectangle, lower corner.
    pub rect_lo: Vec<f64>,
    /// Bounding rectangle, upper corner.
    pub rect_hi: Vec<f64>,
}

/// An R-tree over reduced representations.
///
/// ```
/// use sapla_baselines::{Paa, Reducer};
/// use sapla_core::TimeSeries;
/// use sapla_index::{scheme_for, Query, RTree};
///
/// let series: Vec<TimeSeries> = (0..20)
///     .map(|i| TimeSeries::new((0..32).map(|t| ((t + i) as f64 * 0.3).sin()).collect()).unwrap())
///     .collect();
/// let scheme = scheme_for("PAA")?;
/// let reps = series.iter().map(|s| Paa.reduce(s, 8)).collect::<Result<Vec<_>, _>>()?;
/// let tree = RTree::build(scheme.as_ref(), reps, 2, 5)?;
/// let q = Query::new(&series[0], &Paa, 8)?;
/// let knn = tree.knn(&q, 3, scheme.as_ref(), &series)?;
/// assert_eq!(knn.retrieved[0], 0); // a database member is its own 1-NN
/// # Ok::<(), sapla_core::Error>(())
/// ```
pub struct RTree {
    min_fill: usize,
    max_fill: usize,
    root: usize,
    nodes: Vec<Node>,
    reps: Vec<Representation>,
    features: Vec<Vec<f64>>,
    /// Per-node SoA leaf blocks (parallel to `nodes`), refreshed at every
    /// leaf mutation; only consulted when the scheme supports the planned
    /// `Dist_PAR` kernels and the query carries a plan.
    blocks: Vec<LeafBlock>,
}

impl RTree {
    /// Build by sequential insertion (what the paper's ingest-time
    /// experiment measures). `min_fill`/`max_fill` follow Section 6
    /// (2 and 5).
    ///
    /// # Errors
    ///
    /// Propagates feature-extraction failures from the scheme.
    pub fn build(
        scheme: &dyn Scheme,
        reps: Vec<Representation>,
        min_fill: usize,
        max_fill: usize,
    ) -> Result<RTree> {
        assert!(min_fill >= 1 && max_fill >= 2 * min_fill, "invalid fill factors");
        let mut features = Vec::with_capacity(reps.len());
        for rep in &reps {
            features.push(scheme.feature(rep)?);
        }
        let mut tree = RTree {
            min_fill,
            max_fill,
            root: 0,
            nodes: vec![Node {
                rect: HyperRect { lo: vec![], hi: vec![] },
                kind: NodeKind::Leaf(vec![]),
            }],
            reps,
            features,
            blocks: Vec::new(),
        };
        tree.refresh_block(0);
        for id in 0..tree.reps.len() {
            tree.insert_entry(id);
        }
        Ok(tree)
    }

    /// Bulk loading by sorted packing (a one-dimensional STR): entries are
    /// ordered by their first feature dimension and packed into full
    /// leaves, then each level is packed the same way. Produces fuller
    /// nodes and a shallower tree than sequential insertion — the
    /// bulk-ingest alternative the classic R-tree literature recommends.
    ///
    /// # Errors
    ///
    /// Propagates feature-extraction failures from the scheme.
    pub fn bulk_load_packed(
        scheme: &dyn Scheme,
        reps: Vec<Representation>,
        min_fill: usize,
        max_fill: usize,
    ) -> Result<RTree> {
        assert!(min_fill >= 1 && max_fill >= 2 * min_fill, "invalid fill factors");
        let mut features = Vec::with_capacity(reps.len());
        for rep in &reps {
            features.push(scheme.feature(rep)?);
        }
        let mut tree = RTree {
            min_fill,
            max_fill,
            root: 0,
            nodes: vec![Node {
                rect: HyperRect { lo: vec![], hi: vec![] },
                kind: NodeKind::Leaf(vec![]),
            }],
            reps,
            features,
            blocks: Vec::new(),
        };
        if tree.reps.is_empty() {
            tree.refresh_block(0);
            return Ok(tree);
        }
        tree.nodes.clear();
        tree.blocks.clear();

        // Pack entries into leaves, ordered by the first feature dim.
        let mut order: Vec<usize> = (0..tree.reps.len()).collect();
        order.sort_by(|&a, &b| {
            tree.features[a]
                .first()
                .copied()
                .unwrap_or(0.0)
                .total_cmp(&tree.features[b].first().copied().unwrap_or(0.0))
        });
        let mut level: Vec<usize> = Vec::new();
        for chunk in order.chunks(max_fill) {
            let mut rect = HyperRect::point(&tree.features[chunk[0]]);
            for &e in &chunk[1..] {
                rect.extend_point(&tree.features[e]);
            }
            tree.nodes.push(Node { rect, kind: NodeKind::Leaf(chunk.to_vec()) });
            level.push(tree.nodes.len() - 1);
        }
        // Pack internal levels until one root remains.
        while level.len() > 1 {
            level.sort_by(|&a, &b| {
                tree.nodes[a]
                    .rect
                    .lo
                    .first()
                    .copied()
                    .unwrap_or(0.0)
                    .total_cmp(&tree.nodes[b].rect.lo.first().copied().unwrap_or(0.0))
            });
            let mut next = Vec::with_capacity(level.len().div_ceil(max_fill));
            for chunk in level.chunks(max_fill) {
                let mut rect = tree.nodes[chunk[0]].rect.clone();
                for &c in &chunk[1..] {
                    rect.extend_rect(&tree.nodes[c].rect.clone());
                }
                tree.nodes.push(Node { rect, kind: NodeKind::Internal(chunk.to_vec()) });
                next.push(tree.nodes.len() - 1);
            }
            level = next;
        }
        tree.root = level[0];
        for node in 0..tree.nodes.len() {
            tree.refresh_block(node);
        }
        Ok(tree)
    }

    /// Number of indexed series.
    pub fn len(&self) -> usize {
        self.reps.len()
    }

    /// `true` iff no series are indexed.
    pub fn is_empty(&self) -> bool {
        self.reps.is_empty()
    }

    /// The indexed representations, by entry id (removed entries keep
    /// their slot — ids are stable).
    pub fn reps(&self) -> &[Representation] {
        &self.reps
    }

    /// Insert one more representation, returning its entry id.
    ///
    /// # Errors
    ///
    /// Propagates feature-extraction failures from the scheme.
    pub fn insert(&mut self, scheme: &dyn Scheme, rep: Representation) -> Result<usize> {
        let id = self.reps.len();
        self.features.push(scheme.feature(&rep)?);
        self.reps.push(rep);
        self.insert_entry(id);
        Ok(id)
    }

    /// ε-range search: ids of all indexed series whose **exact** Euclidean
    /// distance to the query is at most `epsilon` (GEMINI filter over node
    /// MINDIST and representation distances, exact refinement over `raws`).
    ///
    /// With valid lower bounds (PAA/PLA/CHEBY/SAX schemes) the result is
    /// exact; for the adaptive schemes it inherits the conditional-bound
    /// caveat of `Dist_PAR`.
    ///
    /// # Errors
    ///
    /// Propagates distance-computation failures.
    pub fn range(
        &self,
        q: &Query,
        epsilon: f64,
        scheme: &dyn Scheme,
        raws: &[TimeSeries],
    ) -> Result<SearchStats> {
        debug_assert_eq!(raws.len(), self.reps.len());
        let mut hits: Vec<(f64, usize)> = Vec::new();
        let mut tally = SearchTally::default();
        let mut dist_scratch = sapla_distance::ParScratch::default();
        let use_soa = scheme.supports_par_plan() && q.plan.is_some();
        if !self.is_empty() {
            let mut stack = vec![self.root];
            while let Some(nid) = stack.pop() {
                if scheme.mindist(q, &self.nodes[nid].rect)? > epsilon {
                    tally.prune_node();
                    continue;
                }
                tally.visit_node();
                match &self.nodes[nid].kind {
                    NodeKind::Internal(children) => stack.extend(children.iter().copied()),
                    NodeKind::Leaf(entries) => {
                        tally.consider(entries.len());
                        let block = self
                            .blocks
                            .get(nid)
                            .filter(|b| use_soa && b.is_ok() && b.num_entries() == entries.len());
                        for (j, &e) in entries.iter().enumerate() {
                            let kept = match block {
                                Some(b) => scheme.rep_dist_pruned_soa(
                                    q,
                                    b.entry(j)?,
                                    epsilon,
                                    &mut dist_scratch,
                                )?,
                                None => scheme.rep_dist_pruned(
                                    q,
                                    &self.reps[e],
                                    epsilon,
                                    &mut dist_scratch,
                                )?,
                            };
                            if kept.is_some() {
                                tally.measure();
                                // Abandoned ⇒ exact > epsilon strictly:
                                // not a hit, same as the full comparison.
                                if let Some(exact) = euclidean_early_abandon(
                                    &q.raw,
                                    &raws[e],
                                    safe_sq_bound(epsilon),
                                )? {
                                    #[cfg(feature = "strict-invariants")]
                                    crate::scheme::assert_lb_le_exact(
                                        q,
                                        &self.reps[e],
                                        exact,
                                        0.0,
                                    )?;
                                    if exact <= epsilon {
                                        hits.push((exact, e));
                                    }
                                }
                            } else {
                                tally.prune();
                            }
                        }
                    }
                }
            }
        }
        // (distance, id) — a strict total order, so multi-shard engines
        // can merge per-shard hit lists deterministically.
        hits.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        Ok(SearchStats {
            retrieved: hits.iter().map(|&(_, i)| i).collect(),
            distances: hits.iter().map(|&(d, _)| d).collect(),
            measured: tally.finish_range(),
            total: self.reps.len(),
        })
    }

    /// Remove entry `id` from the index (its slot in the id space is
    /// retained so other ids stay stable). Underfull nodes are dissolved
    /// and their contents reinserted (Guttman's condense-tree), so the
    /// fill invariants keep holding.
    ///
    /// Returns `false` when `id` is not (or no longer) indexed.
    pub fn remove(&mut self, id: usize) -> bool {
        if id >= self.reps.len() {
            return false;
        }
        let mut orphans = Vec::new();
        let (found, root_empty) = self.remove_rec(self.root, id, &mut orphans);
        if !found {
            return false;
        }
        if root_empty {
            self.nodes[self.root].kind = NodeKind::Leaf(vec![]);
            self.refresh_block(self.root);
        }
        // Shrink a root that lost all but one child.
        loop {
            let next = match &self.nodes[self.root].kind {
                NodeKind::Internal(c) if c.len() == 1 => c[0],
                _ => break,
            };
            self.root = next;
        }
        for e in orphans {
            self.insert_entry(e);
        }
        true
    }

    /// Ids currently stored in leaves (sorted).
    pub fn entry_ids(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_entries(self.root, &mut out);
        out.sort_unstable();
        out
    }

    fn collect_entries(&self, node: usize, out: &mut Vec<usize>) {
        match &self.nodes[node].kind {
            NodeKind::Internal(children) => {
                for &c in children {
                    self.collect_entries(c, out);
                }
            }
            NodeKind::Leaf(entries) => out.extend_from_slice(entries),
        }
    }

    /// Root node id, for the snapshot writer.
    pub(crate) fn root_id(&self) -> usize {
        self.root
    }

    /// The extracted feature vectors, by entry id, for the snapshot
    /// writer (persisted so a load skips re-extraction).
    pub(crate) fn feature_vectors(&self) -> &[Vec<f64>] {
        &self.features
    }

    /// Export the node arena verbatim — same slot order, same ids — so a
    /// tree reconstructed from the export replays best-first searches
    /// bit-for-bit (the traversal heap tie-breaks on node id).
    pub(crate) fn raw_nodes(&self) -> Vec<RawRtreeNode> {
        self.nodes
            .iter()
            .map(|n| {
                let (is_leaf, ids) = match &n.kind {
                    NodeKind::Internal(c) => (false, c.clone()),
                    NodeKind::Leaf(e) => (true, e.clone()),
                };
                RawRtreeNode {
                    is_leaf,
                    ids,
                    rect_lo: n.rect.lo.clone(),
                    rect_hi: n.rect.hi.clone(),
                }
            })
            .collect()
    }

    /// Reassemble a tree from persisted parts without re-running the
    /// insertion build *or* feature extraction: nodes, rectangles and
    /// feature vectors are adopted verbatim after a structural walk,
    /// then the SoA leaf blocks are rebuilt in one linear pass. Every
    /// malformed input is an `Err`, never a panic.
    ///
    /// Validated here: fill-factor sanity, root in range, the graph
    /// under `root` is a tree covering the whole arena, internal fanout
    /// non-empty, leaf entry ids unique / in range / covering `reps`
    /// exactly, one feature vector per rep, and rectangles with matched
    /// lo/hi arity, finite bounds and `lo ≤ hi` per dimension. MINDIST
    /// containment of the stored rects is *not* re-derived — the
    /// proptest suite pins loaded answers to freshly-built ones instead.
    ///
    /// # Errors
    ///
    /// [`sapla_core::Error::CorruptIndex`] naming the violated invariant.
    pub(crate) fn from_raw_parts(
        min_fill: usize,
        max_fill: usize,
        root: usize,
        raw: Vec<RawRtreeNode>,
        reps: Vec<Representation>,
        features: Vec<Vec<f64>>,
    ) -> Result<RTree> {
        fn corrupt(reason: &'static str) -> sapla_core::Error {
            sapla_core::Error::CorruptIndex { reason }
        }
        if min_fill < 1 || max_fill < 2 * min_fill {
            return Err(corrupt("snapshot fill factors violate min/max constraints"));
        }
        if features.len() != reps.len() {
            return Err(corrupt("snapshot feature arena does not match the rep arena"));
        }
        if root >= raw.len() {
            return Err(corrupt("snapshot root id outside the node arena"));
        }
        let mut visited = vec![false; raw.len()];
        let mut seen_entry = vec![false; reps.len()];
        let mut n_entries = 0usize;
        // Iterative walk (adversarial inputs could nest deeper than the
        // call stack tolerates).
        let mut stack = vec![root];
        while let Some(nid) = stack.pop() {
            let node =
                raw.get(nid).ok_or_else(|| corrupt("snapshot child id outside the node arena"))?;
            if std::mem::replace(&mut visited[nid], true) {
                return Err(corrupt("snapshot node arena contains a cycle or shared child"));
            }
            if node.rect_lo.len() != node.rect_hi.len() {
                return Err(corrupt("snapshot rectangle lo/hi arity mismatch"));
            }
            for (&lo, &hi) in node.rect_lo.iter().zip(&node.rect_hi) {
                if !lo.is_finite() || !hi.is_finite() || lo > hi {
                    return Err(corrupt("snapshot rectangle bounds are inverted or non-finite"));
                }
            }
            if node.is_leaf {
                for &e in &node.ids {
                    if e >= reps.len() {
                        return Err(corrupt("snapshot leaf entry outside the rep arena"));
                    }
                    if std::mem::replace(&mut seen_entry[e], true) {
                        return Err(corrupt("snapshot entry id stored in more than one leaf"));
                    }
                    n_entries += 1;
                }
            } else {
                if node.ids.is_empty() {
                    return Err(corrupt("snapshot internal node has no children"));
                }
                stack.extend(node.ids.iter().copied());
            }
        }
        if visited.iter().any(|v| !v) {
            return Err(corrupt("snapshot node arena contains detached nodes"));
        }
        if n_entries != reps.len() {
            return Err(corrupt("snapshot leaves do not cover the rep arena exactly"));
        }
        let nodes = raw
            .into_iter()
            .map(|n| Node {
                rect: HyperRect { lo: n.rect_lo, hi: n.rect_hi },
                kind: if n.is_leaf { NodeKind::Leaf(n.ids) } else { NodeKind::Internal(n.ids) },
            })
            .collect::<Vec<_>>();
        let mut tree =
            RTree { min_fill, max_fill, root, nodes, reps, features, blocks: Vec::new() };
        for nid in 0..tree.nodes.len() {
            tree.refresh_block(nid);
        }
        Ok(tree)
    }

    /// Returns `(found, this node should be detached)`.
    fn remove_rec(&mut self, node: usize, id: usize, orphans: &mut Vec<usize>) -> (bool, bool) {
        match &self.nodes[node].kind {
            NodeKind::Leaf(entries) => {
                let Some(pos) = entries.iter().position(|&e| e == id) else {
                    return (false, false);
                };
                let is_root = node == self.root;
                let mut detach = false;
                if let NodeKind::Leaf(entries) = &mut self.nodes[node].kind {
                    entries.remove(pos);
                    if entries.is_empty() {
                        detach = true;
                    } else if entries.len() < self.min_fill && !is_root {
                        orphans.append(entries);
                        detach = true;
                    }
                }
                if detach {
                    if let Some(b) = self.blocks.get_mut(node) {
                        b.invalidate();
                    }
                    return (true, true);
                }
                self.recompute_rect(node);
                self.refresh_block(node);
                (true, false)
            }
            NodeKind::Internal(children) => {
                let children = children.clone();
                for (idx, &c) in children.iter().enumerate() {
                    // Only descend where the entry's point can live.
                    if self.nodes[c].rect.min_sq_dist_point(&self.features[id]) > 0.0 {
                        continue;
                    }
                    let (found, detach) = self.remove_rec(c, id, orphans);
                    if !found {
                        continue;
                    }
                    let is_root = node == self.root;
                    let mut dissolved = false;
                    if let NodeKind::Internal(kids) = &mut self.nodes[node].kind {
                        if detach {
                            kids.remove(idx);
                        }
                        if kids.is_empty() {
                            return (true, true);
                        }
                        if kids.len() < self.min_fill && !is_root {
                            dissolved = true;
                        }
                    }
                    if dissolved {
                        let kids = match &self.nodes[node].kind {
                            NodeKind::Internal(k) => k.clone(),
                            NodeKind::Leaf(_) => unreachable!(),
                        };
                        for k in kids {
                            self.collect_entries(k, orphans);
                        }
                        return (true, true);
                    }
                    self.recompute_rect(node);
                    return (true, false);
                }
                (false, false)
            }
        }
    }

    fn entry_rect(&self, id: usize) -> HyperRect {
        HyperRect::point(&self.features[id])
    }

    /// Mirror a node into its SoA leaf block (see [`LeafBlock`]): leaves
    /// get their entry coefficients flattened, internal slots are marked
    /// unusable. Called at every site that mutates a leaf's entry list,
    /// keeping `blocks` parallel to `nodes`.
    fn refresh_block(&mut self, node: usize) {
        if self.blocks.len() < self.nodes.len() {
            self.blocks.resize_with(self.nodes.len(), LeafBlock::default);
        }
        match &self.nodes[node].kind {
            NodeKind::Leaf(entries) => self.blocks[node].rebuild(entries, &self.reps),
            NodeKind::Internal(_) => self.blocks[node].invalidate(),
        }
    }

    fn insert_entry(&mut self, id: usize) {
        let rect = self.entry_rect(id);
        if let NodeKind::Leaf(entries) = &self.nodes[self.root].kind {
            if entries.is_empty() {
                self.nodes[self.root].rect = rect;
                if let NodeKind::Leaf(entries) = &mut self.nodes[self.root].kind {
                    entries.push(id);
                }
                self.refresh_block(self.root);
                return;
            }
        }
        if let Some(sibling) = self.insert_rec(self.root, id, &rect) {
            // Root split: grow the tree by one level.
            let old_root = self.root;
            let new_rect = self.nodes[old_root].rect.union(&self.nodes[sibling].rect);
            self.nodes
                .push(Node { rect: new_rect, kind: NodeKind::Internal(vec![old_root, sibling]) });
            self.root = self.nodes.len() - 1;
            self.refresh_block(self.root);
        }
    }

    /// Recursive insert; returns the id of a new sibling if `node` split.
    fn insert_rec(&mut self, node: usize, id: usize, rect: &HyperRect) -> Option<usize> {
        self.nodes[node].rect.extend_rect(rect);
        match &self.nodes[node].kind {
            NodeKind::Leaf(_) => {
                if let NodeKind::Leaf(entries) = &mut self.nodes[node].kind {
                    entries.push(id);
                }
                if self.leaf_len(node) > self.max_fill {
                    Some(self.split_leaf(node))
                } else {
                    self.refresh_block(node);
                    None
                }
            }
            NodeKind::Internal(children) => {
                // Guttman: child whose rect needs least enlargement
                // (ties: smallest area).
                let mut best = (f64::INFINITY, f64::INFINITY, children[0]);
                for &c in children {
                    let enl = self.nodes[c].rect.enlargement(rect);
                    let area = self.nodes[c].rect.area();
                    if (enl, area) < (best.0, best.1) {
                        best = (enl, area, c);
                    }
                }
                let child = best.2;
                let sibling = self.insert_rec(child, id, rect)?;
                if let NodeKind::Internal(children) = &mut self.nodes[node].kind {
                    children.push(sibling);
                }
                self.recompute_rect(node);
                (self.internal_len(node) > self.max_fill).then(|| self.split_internal(node))
            }
        }
    }

    fn leaf_len(&self, node: usize) -> usize {
        match &self.nodes[node].kind {
            NodeKind::Leaf(e) => e.len(),
            NodeKind::Internal(_) => unreachable!("leaf_len on internal node"),
        }
    }

    fn internal_len(&self, node: usize) -> usize {
        match &self.nodes[node].kind {
            NodeKind::Internal(c) => c.len(),
            NodeKind::Leaf(_) => unreachable!("internal_len on leaf node"),
        }
    }

    fn recompute_rect(&mut self, node: usize) {
        // Option-accumulator folds: nodes are never empty here (splits
        // and condenses keep ≥ min_fill members), but an empty node
        // degrades to keeping its stale rect rather than panicking.
        let rect = match &self.nodes[node].kind {
            NodeKind::Internal(children) => {
                let mut rect: Option<HyperRect> = None;
                for &c in children {
                    match &mut rect {
                        Some(r) => r.extend_rect(&self.nodes[c].rect),
                        None => rect = Some(self.nodes[c].rect.clone()),
                    }
                }
                rect
            }
            NodeKind::Leaf(entries) => {
                let mut rect: Option<HyperRect> = None;
                for &e in entries {
                    match &mut rect {
                        Some(r) => r.extend_point(&self.features[e]),
                        None => rect = Some(self.entry_rect(e)),
                    }
                }
                rect
            }
        };
        let Some(rect) = rect else { return };
        self.nodes[node].rect = rect;
    }

    fn split_leaf(&mut self, node: usize) -> usize {
        let entries = match &mut self.nodes[node].kind {
            NodeKind::Leaf(e) => std::mem::take(e),
            NodeKind::Internal(_) => unreachable!(),
        };
        let rects: Vec<HyperRect> = entries.iter().map(|&e| self.entry_rect(e)).collect();
        let (ga, gb) = quadratic_split(&rects, self.min_fill);
        let keep: Vec<usize> = ga.iter().map(|&i| entries[i]).collect();
        let give: Vec<usize> = gb.iter().map(|&i| entries[i]).collect();
        self.nodes[node].kind = NodeKind::Leaf(keep);
        self.recompute_rect(node);
        self.nodes.push(Node {
            rect: HyperRect::point(&self.features[give[0]]),
            kind: NodeKind::Leaf(give),
        });
        let sib = self.nodes.len() - 1;
        self.recompute_rect(sib);
        self.refresh_block(node);
        self.refresh_block(sib);
        sib
    }

    fn split_internal(&mut self, node: usize) -> usize {
        let children = match &mut self.nodes[node].kind {
            NodeKind::Internal(c) => std::mem::take(c),
            NodeKind::Leaf(_) => unreachable!(),
        };
        let rects: Vec<HyperRect> = children.iter().map(|&c| self.nodes[c].rect.clone()).collect();
        let (ga, gb) = quadratic_split(&rects, self.min_fill);
        let keep: Vec<usize> = ga.iter().map(|&i| children[i]).collect();
        let give: Vec<usize> = gb.iter().map(|&i| children[i]).collect();
        self.nodes[node].kind = NodeKind::Internal(keep);
        self.recompute_rect(node);
        let rect = self.nodes[give[0]].rect.clone();
        self.nodes.push(Node { rect, kind: NodeKind::Internal(give) });
        let sib = self.nodes.len() - 1;
        self.recompute_rect(sib);
        sib
    }

    /// Best-first k-NN (GEMINI) with exact refinement over `raws`.
    ///
    /// Nodes are visited in MINDIST order; entries are filtered with the
    /// scheme's representation distance and, if they survive, fetched and
    /// measured exactly (each fetch is one "disk access" — the paper's
    /// pruning-power unit). When the node bounds of adjacent leaves
    /// overlap (the APCA-MBR problem), leaves cannot be skipped and the
    /// measured count grows — exactly the effect Fig. 13 quantifies.
    ///
    /// # Errors
    ///
    /// Propagates distance-computation failures.
    pub fn knn(
        &self,
        q: &Query,
        k: usize,
        scheme: &dyn Scheme,
        raws: &[TimeSeries],
    ) -> Result<SearchStats> {
        self.knn_with_scratch(q, k, scheme, raws, &mut KnnScratch::new())
    }

    /// [`RTree::knn`] with caller-owned scratch buffers, making
    /// steady-state search allocation-free. Results are identical to
    /// [`RTree::knn`] whatever the scratch's history — every buffer is
    /// cleared on entry.
    ///
    /// # Errors
    ///
    /// Propagates distance-computation failures.
    pub fn knn_with_scratch(
        &self,
        q: &Query,
        k: usize,
        scheme: &dyn Scheme,
        raws: &[TimeSeries],
        scratch: &mut KnnScratch,
    ) -> Result<SearchStats> {
        debug_assert_eq!(raws.len(), self.reps.len());
        scratch.reset(k);
        let KnnScratch { results, nodes: heap, dist, hull } = scratch;
        let mut tally = SearchTally::default();
        let use_soa = scheme.supports_par_plan() && q.plan.is_some();
        if !self.is_empty() {
            let d = scheme.mindist(q, &self.nodes[self.root].rect)?;
            heap.push(Reverse((OrdF64::new(d), self.root, 0)));
        }
        while let Some(Reverse((d, nid, depth))) = heap.pop() {
            if d.get() > results.threshold() {
                // Best-first order: the popped node *and* everything
                // still queued behind it are beyond the threshold.
                tally.prune_nodes(1 + heap.len());
                break;
            }
            tally.visit_node();
            match &self.nodes[nid].kind {
                NodeKind::Internal(children) => {
                    for &c in children {
                        let d_child = scheme.mindist(q, &self.nodes[c].rect)?;
                        if d_child <= results.threshold() {
                            heap.push(Reverse((OrdF64::new(d_child), c, depth + 1)));
                        } else {
                            tally.prune_node();
                        }
                    }
                }
                NodeKind::Leaf(entries) => {
                    let block = self
                        .blocks
                        .get(nid)
                        .filter(|b| use_soa && b.is_ok() && b.num_entries() == entries.len());
                    crate::batched::eval_leaf_entries(
                        q, scheme, raws, &self.reps, entries, block, results, dist, hull,
                        &mut tally, 0.0,
                    )?;
                }
            }
        }
        let (retrieved, distances) = results.drain_sorted();
        Ok(SearchStats {
            retrieved,
            distances,
            measured: tally.finish_knn(),
            total: self.reps.len(),
        })
    }

    /// Structural statistics (Figs. 15–16).
    pub fn shape(&self) -> TreeShape {
        let mut shape = TreeShape::default();
        self.walk(self.root, 1, &mut shape);
        shape
    }
}

impl crate::batched::BatchTree for RTree {
    fn root(&self) -> usize {
        self.root
    }
    fn is_empty(&self) -> bool {
        RTree::is_empty(self)
    }
    fn reps(&self) -> &[Representation] {
        &self.reps
    }
    fn node_view(&self, nid: usize) -> crate::batched::NodeView<'_> {
        match &self.nodes[nid].kind {
            NodeKind::Internal(c) => crate::batched::NodeView::Internal(c),
            NodeKind::Leaf(e) => crate::batched::NodeView::Leaf(e),
        }
    }
    fn leaf_block(&self, nid: usize, n_entries: usize) -> Option<&LeafBlock> {
        self.blocks.get(nid).filter(|b| b.is_ok() && b.num_entries() == n_entries)
    }
    fn node_bound(
        &self,
        q: &Query,
        scheme: &dyn Scheme,
        nid: usize,
        _dist: &mut sapla_distance::ParScratch,
        // MINDIST bounds come from rectangles, not entry distances —
        // nothing to memoise; the memo stays empty and the leaf filter
        // always takes the stock evaluation.
        _memo: &mut crate::knn::HullMemo,
    ) -> Result<f64> {
        scheme.mindist(q, &self.nodes[nid].rect)
    }
}

impl RTree {
    fn walk(&self, node: usize, depth: usize, shape: &mut TreeShape) {
        shape.height = shape.height.max(depth);
        match &self.nodes[node].kind {
            NodeKind::Internal(children) => {
                shape.internal_nodes += 1;
                for &c in children {
                    self.walk(c, depth + 1, shape);
                }
            }
            NodeKind::Leaf(entries) => {
                shape.leaf_nodes += 1;
                shape.entries += entries.len();
            }
        }
    }
}

/// Guttman's quadratic split over item rectangles. Returns the two groups
/// as index lists; both respect `min_fill`.
fn quadratic_split(rects: &[HyperRect], min_fill: usize) -> (Vec<usize>, Vec<usize>) {
    let n = rects.len();
    debug_assert!(n >= 2 * min_fill);
    // Seeds: the pair wasting the most area when paired.
    let mut seeds = (0usize, 1usize);
    let mut worst = f64::NEG_INFINITY;
    for i in 0..n {
        for j in (i + 1)..n {
            let waste = rects[i].union(&rects[j]).area() - rects[i].area() - rects[j].area();
            if waste > worst {
                worst = waste;
                seeds = (i, j);
            }
        }
    }
    let mut ga = vec![seeds.0];
    let mut gb = vec![seeds.1];
    let mut ra = rects[seeds.0].clone();
    let mut rb = rects[seeds.1].clone();
    let mut rest: Vec<usize> = (0..n).filter(|&i| i != seeds.0 && i != seeds.1).collect();

    while let Some(pos) = pick_next(&rest, rects, &ra, &rb) {
        let i = rest.swap_remove(pos);
        // Force-assign to honour min_fill.
        let need_a = min_fill.saturating_sub(ga.len());
        let need_b = min_fill.saturating_sub(gb.len());
        let to_a = if rest.len() + 1 == need_a {
            true
        } else if rest.len() + 1 == need_b {
            false
        } else {
            let ea = ra.enlargement(&rects[i]);
            let eb = rb.enlargement(&rects[i]);
            match ea.partial_cmp(&eb) {
                Some(std::cmp::Ordering::Less) => true,
                Some(std::cmp::Ordering::Greater) => false,
                _ => ra.area() <= rb.area(),
            }
        };
        if to_a {
            ga.push(i);
            ra.extend_rect(&rects[i]);
        } else {
            gb.push(i);
            rb.extend_rect(&rects[i]);
        }
    }
    (ga, gb)
}

/// Guttman's PickNext: the remaining item with the largest preference for
/// one group over the other.
fn pick_next(rest: &[usize], rects: &[HyperRect], ra: &HyperRect, rb: &HyperRect) -> Option<usize> {
    if rest.is_empty() {
        return None;
    }
    let mut best = (f64::NEG_INFINITY, 0usize);
    for (pos, &i) in rest.iter().enumerate() {
        let diff = (ra.enlargement(&rects[i]) - rb.enlargement(&rects[i])).abs();
        if diff > best.0 {
            best = (diff, pos);
        }
    }
    Some(best.1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::scheme_for;
    use sapla_baselines::{Paa, Reducer};

    fn dataset(n_series: usize, len: usize) -> Vec<TimeSeries> {
        (0..n_series)
            .map(|i| {
                TimeSeries::new(
                    (0..len)
                        .map(|t| {
                            ((t + i * 7) as f64 * 0.21).sin() * (1.0 + i as f64 * 0.08)
                                + (i as f64 * 0.37).cos()
                        })
                        .collect(),
                )
                .unwrap()
                .znormalized()
            })
            .collect()
    }

    fn build_paa(raws: &[TimeSeries], m: usize) -> (RTree, Box<dyn Scheme>) {
        let scheme = scheme_for("PAA").unwrap();
        let reps: Vec<Representation> = raws.iter().map(|s| Paa.reduce(s, m).unwrap()).collect();
        let tree = RTree::build(scheme.as_ref(), reps, 2, 5).unwrap();
        (tree, scheme)
    }

    #[test]
    fn shape_is_consistent() {
        let raws = dataset(60, 64);
        let (tree, _) = build_paa(&raws, 8);
        let shape = tree.shape();
        assert_eq!(shape.entries, 60);
        assert!(shape.leaf_nodes >= 60 / 5);
        assert!(shape.height >= 2);
        assert!(shape.total_nodes() > shape.internal_nodes);
    }

    #[test]
    fn knn_matches_linear_scan_for_paa() {
        // PAA's bounds are true lower bounds, so the GEMINI search is
        // exact: it must return precisely the true k-NN.
        let raws = dataset(50, 64);
        let (tree, scheme) = build_paa(&raws, 8);
        let query =
            TimeSeries::new((0..64).map(|t| (t as f64 * 0.23).sin() * 1.1).collect::<Vec<_>>())
                .unwrap()
                .znormalized();
        let q = Query::new(&query, &Paa, 8).unwrap();
        let stats = tree.knn(&q, 5, scheme.as_ref(), &raws).unwrap();
        // Ground truth by brute force.
        let mut truth: Vec<(f64, usize)> =
            raws.iter().enumerate().map(|(i, s)| (query.euclidean(s).unwrap(), i)).collect();
        truth.sort_by(|a, b| a.0.total_cmp(&b.0));
        let expect: Vec<usize> = truth[..5].iter().map(|&(_, i)| i).collect();
        assert_eq!(stats.retrieved, expect);
        assert!(stats.measured <= raws.len());
        assert!(stats.distances.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn knn_prunes_something_on_clusterable_data() {
        // Two well-separated clusters: the search should not measure the
        // entire database.
        let mut raws = dataset(30, 64);
        for s in dataset(30, 64) {
            let shifted = TimeSeries::new(s.values().iter().map(|v| v * 0.2 + 3.0).collect())
                .unwrap()
                .znormalized();
            raws.push(shifted);
        }
        let (tree, scheme) = build_paa(&raws, 8);
        let q = Query::new(&raws[3], &Paa, 8).unwrap();
        let stats = tree.knn(&q, 3, scheme.as_ref(), &raws).unwrap();
        assert!(stats.measured < raws.len(), "no pruning at all: {}", stats.measured);
        assert_eq!(stats.retrieved.len(), 3);
        assert!(stats.retrieved.contains(&3), "self should be in 3-NN of itself");
    }

    #[test]
    fn single_entry_tree() {
        let raws = dataset(1, 32);
        let (tree, scheme) = build_paa(&raws, 4);
        assert_eq!(tree.len(), 1);
        let q = Query::new(&raws[0], &Paa, 4).unwrap();
        let stats = tree.knn(&q, 1, scheme.as_ref(), &raws).unwrap();
        assert_eq!(stats.retrieved, vec![0]);
        assert!(stats.distances[0] < 1e-9);
    }

    #[test]
    fn quadratic_split_respects_min_fill() {
        let rects: Vec<HyperRect> =
            (0..7).map(|i| HyperRect::point(&[i as f64, (i * i) as f64])).collect();
        let (a, b) = quadratic_split(&rects, 2);
        assert!(a.len() >= 2 && b.len() >= 2);
        assert_eq!(a.len() + b.len(), 7);
        let mut all: Vec<usize> = a.iter().chain(&b).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn packed_bulk_load_is_denser_and_still_exact() {
        let raws = dataset(60, 64);
        let scheme = scheme_for("PAA").unwrap();
        let reps: Vec<Representation> = raws.iter().map(|s| Paa.reduce(s, 8).unwrap()).collect();
        let seq = RTree::build(scheme.as_ref(), reps.clone(), 2, 5).unwrap();
        let packed = RTree::bulk_load_packed(scheme.as_ref(), reps, 2, 5).unwrap();
        assert_eq!(packed.shape().entries, 60);
        assert!(
            packed.shape().total_nodes() <= seq.shape().total_nodes(),
            "packed {} vs sequential {}",
            packed.shape().total_nodes(),
            seq.shape().total_nodes()
        );
        assert!(packed.shape().avg_leaf_fill() >= seq.shape().avg_leaf_fill() - 1e-9);
        // Exactness is preserved (PAA bounds are true lower bounds).
        let q = Query::new(&raws[11], &Paa, 8).unwrap();
        let a = packed.knn(&q, 5, scheme.as_ref(), &raws).unwrap();
        let b = seq.knn(&q, 5, scheme.as_ref(), &raws).unwrap();
        assert_eq!(a.retrieved, b.retrieved);
    }

    #[test]
    fn packed_bulk_load_handles_empty_and_tiny() {
        let scheme = scheme_for("PAA").unwrap();
        let empty = RTree::bulk_load_packed(scheme.as_ref(), vec![], 2, 5).unwrap();
        assert!(empty.is_empty());
        let raws = dataset(3, 32);
        let reps: Vec<Representation> = raws.iter().map(|s| Paa.reduce(s, 4).unwrap()).collect();
        let t = RTree::bulk_load_packed(scheme.as_ref(), reps, 2, 5).unwrap();
        assert_eq!(t.shape().entries, 3);
        assert_eq!(t.shape().height, 1);
    }

    #[test]
    fn incremental_insert_matches_bulk_build() {
        let raws = dataset(20, 64);
        let scheme = scheme_for("PAA").unwrap();
        let reps: Vec<Representation> = raws.iter().map(|s| Paa.reduce(s, 8).unwrap()).collect();
        let bulk = RTree::build(scheme.as_ref(), reps.clone(), 2, 5).unwrap();
        let mut incr = RTree::build(scheme.as_ref(), vec![], 2, 5).unwrap();
        for rep in reps {
            incr.insert(scheme.as_ref(), rep).unwrap();
        }
        assert_eq!(incr.len(), bulk.len());
        // Same search results, whatever the internal structure.
        let q = Query::new(&raws[2], &Paa, 8).unwrap();
        let a = bulk.knn(&q, 4, scheme.as_ref(), &raws).unwrap();
        let b = incr.knn(&q, 4, scheme.as_ref(), &raws).unwrap();
        assert_eq!(a.retrieved, b.retrieved);
    }

    #[test]
    fn range_search_is_exact_for_paa() {
        let raws = dataset(40, 64);
        let (tree, scheme) = build_paa(&raws, 8);
        let q = Query::new(&raws[0], &Paa, 8).unwrap();
        for eps in [0.5, 2.0, 8.0, 100.0] {
            let got = tree.range(&q, eps, scheme.as_ref(), &raws).unwrap();
            let want = crate::linear_scan::linear_scan_range(&raws[0], &raws, eps).unwrap();
            assert_eq!(got.retrieved, want.retrieved, "eps={eps}");
            assert!(got.measured <= raws.len());
        }
    }

    #[test]
    fn remove_then_search_never_returns_removed_ids() {
        let raws = dataset(40, 64);
        let scheme = scheme_for("PAA").unwrap();
        let reps: Vec<Representation> = raws.iter().map(|s| Paa.reduce(s, 8).unwrap()).collect();
        let mut tree = RTree::build(scheme.as_ref(), reps, 2, 5).unwrap();
        for id in [3usize, 17, 0, 39, 20, 21, 22, 23] {
            assert!(tree.remove(id), "remove {id}");
            assert!(!tree.remove(id), "double remove {id} must fail");
        }
        let ids = tree.entry_ids();
        assert_eq!(ids.len(), 32);
        for removed in [3usize, 17, 0, 39, 20, 21, 22, 23] {
            assert!(!ids.contains(&removed));
        }
        // Search still works and never returns removed entries.
        let q = Query::new(&raws[5], &Paa, 8).unwrap();
        let stats = tree.knn(&q, 6, scheme.as_ref(), &raws).unwrap();
        assert_eq!(stats.retrieved.len(), 6);
        for id in &stats.retrieved {
            assert!(ids.contains(id));
        }
    }

    #[test]
    fn remove_everything_leaves_an_empty_tree() {
        let raws = dataset(12, 32);
        let scheme = scheme_for("PAA").unwrap();
        let reps: Vec<Representation> = raws.iter().map(|s| Paa.reduce(s, 4).unwrap()).collect();
        let mut tree = RTree::build(scheme.as_ref(), reps, 2, 5).unwrap();
        for id in 0..12 {
            assert!(tree.remove(id));
        }
        assert!(tree.entry_ids().is_empty());
        assert!(!tree.remove(0));
        assert!(!tree.remove(99));
        // And the tree accepts new inserts again.
        let rep = Paa.reduce(&raws[0], 4).unwrap();
        let id = tree.insert(scheme.as_ref(), rep).unwrap();
        assert_eq!(tree.entry_ids(), vec![id]);
    }

    #[test]
    fn knn_k_larger_than_db_returns_everything() {
        let raws = dataset(4, 32);
        let (tree, scheme) = build_paa(&raws, 4);
        let q = Query::new(&raws[0], &Paa, 4).unwrap();
        let stats = tree.knn(&q, 10, scheme.as_ref(), &raws).unwrap();
        assert_eq!(stats.retrieved.len(), 4);
    }
}
