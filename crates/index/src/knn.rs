//! Shared k-NN search result types and metrics (Eq. 14 and Eq. 15 of the
//! paper).

/// Outcome of one k-NN search through an index.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchStats {
    /// Ids of the retrieved k nearest neighbours, closest first.
    pub retrieved: Vec<usize>,
    /// Exact distances of the retrieved neighbours, closest first.
    pub distances: Vec<f64>,
    /// How many database series had their exact distance computed
    /// ("the number of time series which have to be measured").
    pub measured: usize,
    /// Database size.
    pub total: usize,
}

impl SearchStats {
    /// Pruning power `ρ` (Eq. 14): fraction of the database measured.
    /// Lower is better.
    pub fn pruning_power(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.measured as f64 / self.total as f64
        }
    }

    /// Accuracy (Eq. 15): `|retrieved ∩ true k-NN| / k`.
    pub fn accuracy(&self, truth: &[usize]) -> f64 {
        if truth.is_empty() {
            return 1.0;
        }
        let hits = self.retrieved.iter().filter(|id| truth.contains(id)).count();
        hits as f64 / truth.len() as f64
    }
}

/// Per-search candidate accounting, shared by every search path (DBCH
/// tree, R-tree, linear scan). This is the single source of truth that
/// used to be duplicated as ad-hoc `measured` locals in `dbch.rs`,
/// `rtree.rs`, and `linear_scan.rs`; the `finish_*` methods flush the
/// tally into the global obs counters and hand back the measured count
/// for [`SearchStats::measured`] (which stays — pruning power, Eq. 14,
/// is public API).
///
/// Invariant, asserted by `tests/obs_counters.rs`: every candidate
/// entry a leaf offers is either pruned by the representation distance
/// or measured exactly, so `considered == pruned + measured`.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct SearchTally {
    considered: usize,
    pruned: usize,
    measured: usize,
    nodes_visited: usize,
    nodes_pruned: usize,
}

impl SearchTally {
    /// A node was popped and expanded.
    pub fn visit_node(&mut self) {
        self.nodes_visited += 1;
    }

    /// A child node was discarded by its lower-bound distance.
    pub fn prune_node(&mut self) {
        self.nodes_pruned += 1;
    }

    /// `n` nodes were discarded at once — the best-first loop terminates
    /// as soon as the closest queued node is beyond the k-th-best
    /// threshold, which prunes that node *and* everything still queued
    /// behind it. (Before this existed, those nodes went uncounted and
    /// the quick-grid profile reported `nodes_pruned == 0` even though
    /// the trees were pruning.)
    pub fn prune_nodes(&mut self, n: usize) {
        self.nodes_pruned += n;
    }

    /// A leaf offered `n` candidate entries.
    pub fn consider(&mut self, n: usize) {
        self.considered += n;
    }

    /// A candidate was discarded by the representation distance.
    pub fn prune(&mut self) {
        self.pruned += 1;
    }

    /// A candidate survived filtering and its exact distance was computed
    /// (one "disk access" in the paper's pruning-power unit).
    pub fn measure(&mut self) {
        self.measured += 1;
    }

    /// Flush into the `index.knn.*` counters; returns `measured`.
    pub fn finish_knn(self) -> usize {
        let SearchTally {
            considered: _considered,
            pruned: _pruned,
            measured,
            nodes_visited: _visited,
            nodes_pruned: _node_pruned,
        } = self;
        sapla_obs::counter!("index.knn.queries");
        sapla_obs::counter!("index.knn.nodes_visited", _visited as u64);
        sapla_obs::counter!("index.knn.nodes_pruned", _node_pruned as u64);
        sapla_obs::counter!("index.knn.entries_considered", _considered as u64);
        sapla_obs::counter!("index.knn.entries_pruned", _pruned as u64);
        sapla_obs::counter!("index.knn.refined", measured as u64);
        measured
    }

    /// Flush into the `index.range.*` counters; returns `measured`.
    pub fn finish_range(self) -> usize {
        let SearchTally {
            considered: _considered,
            pruned: _pruned,
            measured,
            nodes_visited: _visited,
            nodes_pruned: _node_pruned,
        } = self;
        sapla_obs::counter!("index.range.queries");
        sapla_obs::counter!("index.range.nodes_visited", _visited as u64);
        sapla_obs::counter!("index.range.nodes_pruned", _node_pruned as u64);
        sapla_obs::counter!("index.range.entries_considered", _considered as u64);
        sapla_obs::counter!("index.range.entries_pruned", _pruned as u64);
        sapla_obs::counter!("index.range.refined", measured as u64);
        measured
    }

    /// Flush into the `index.scan.*` counters; returns `measured`
    /// (which equals the database size — a scan never prunes).
    pub fn finish_scan(self) -> usize {
        let SearchTally { considered: _considered, measured, .. } = self;
        sapla_obs::counter!("index.scan.queries");
        sapla_obs::counter!("index.scan.measured", measured as u64);
        measured
    }
}

/// A bounded max-heap of the k best (distance, id) pairs seen so far.
#[derive(Debug)]
pub(crate) struct KnnHeap {
    k: usize,
    // Max-heap keyed on distance.
    heap: std::collections::BinaryHeap<(sapla_core::OrdF64, usize)>,
    // Reusable staging buffer for [`KnnHeap::drain_into`].
    sort_buf: Vec<(sapla_core::OrdF64, usize)>,
}

impl KnnHeap {
    pub fn new(k: usize) -> Self {
        KnnHeap {
            k,
            heap: std::collections::BinaryHeap::with_capacity(k + 1),
            sort_buf: Vec::with_capacity(k + 1),
        }
    }

    /// Current pruning threshold: the kth best distance, or ∞ while the
    /// heap is not yet full.
    pub fn threshold(&self) -> f64 {
        if self.heap.len() < self.k {
            f64::INFINITY
        } else {
            self.heap.peek().map_or(f64::INFINITY, |(d, _)| d.get())
        }
    }

    // audit: no_alloc — capacity k+1 is reserved up front.
    pub fn push(&mut self, dist: f64, id: usize) {
        self.heap.push((sapla_core::OrdF64::new(dist), id));
        if self.heap.len() > self.k {
            self.heap.pop();
        }
    }

    /// Drain into (ids, distances), closest first.
    pub fn into_sorted(mut self) -> (Vec<usize>, Vec<f64>) {
        self.drain_sorted()
    }

    /// Drain into (ids, distances), closest first, keeping the heap's
    /// allocation for reuse.
    pub fn drain_sorted(&mut self) -> (Vec<usize>, Vec<f64>) {
        let (mut ids, mut dists) = (Vec::new(), Vec::new());
        self.drain_into(&mut ids, &mut dists);
        (ids, dists)
    }

    /// Drain into caller-owned `(ids, distances)` buffers (cleared first),
    /// closest first, keeping every internal allocation for reuse. Ids are
    /// unique, so the `(distance, id)` pairs are distinct and the unstable
    /// sort is deterministic — the output order matches the stable sort it
    /// replaced.
    // audit: no_alloc — steady-state reuse is the whole point of this path.
    pub fn drain_into(&mut self, ids: &mut Vec<usize>, dists: &mut Vec<f64>) {
        self.sort_buf.clear();
        self.sort_buf.extend(self.heap.drain());
        self.sort_buf.sort_unstable();
        ids.clear();
        dists.clear();
        ids.extend(self.sort_buf.iter().map(|&(_, i)| i));
        dists.extend(self.sort_buf.iter().map(|&(d, _)| d.get()));
    }

    /// Re-arm for a fresh search of `k` neighbours, keeping allocations.
    pub fn reset(&mut self, k: usize) {
        self.k = k;
        self.heap.clear();
    }
}

impl Default for KnnHeap {
    /// A zero-capacity heap: a usable placeholder that
    /// [`KnnHeap::reset`] re-arms to the real `k` before every search.
    fn default() -> Self {
        KnnHeap::new(0)
    }
}

/// Per-query memo of squared hull-representative distances, keyed by
/// entry id. DBCH node bounds fully evaluate the representation
/// distance against the two hull representatives of every node they
/// score, and the same entries recur — an internal hull's
/// representatives are drawn from its children's, and every hull
/// representative is also an ordinary leaf entry. Caching the
/// **squared** distance lets each re-use return the identical value:
/// the distance is `sq.sqrt()` everywhere, the filter decision reduces
/// to `sq.sqrt() <= threshold` on the exact full square (early
/// abandoning only prunes candidates whose full square exceeds the
/// bound — the Eq. 12 terms are clamped ≥ 0, so partial sums are
/// monotone), and square-rooting the cached square is bit-for-bit the
/// fresh evaluation. Caching the root instead would *not* round-trip.
///
/// Only schemes that return a square from
/// [`crate::scheme::Scheme::rep_dist_sq_with`] participate; for others
/// the memo stays empty and every path takes the stock evaluation.
#[derive(Debug, Default)]
pub(crate) struct HullMemo {
    // Squared distance per entry id; NaN ⇒ not recorded.
    sq: Vec<f64>,
    touched: Vec<usize>,
}

impl HullMemo {
    /// The memoised squared distance for entry `id`, if recorded.
    pub fn get(&self, id: usize) -> Option<f64> {
        match self.sq.get(id) {
            Some(v) if !v.is_nan() => Some(*v),
            _ => None,
        }
    }

    /// Replay a leaf-filter decision from the memo: `Some(kept)` when
    /// entry `id` is recorded, where `kept` is exactly what the
    /// scheme's pruned evaluation would decide (`d = sq.sqrt()`, kept
    /// iff `d <= threshold`).
    pub fn filter(&self, id: usize, threshold: f64) -> Option<Option<f64>> {
        let sq = self.get(id)?;
        let d = sq.sqrt();
        Some((d <= threshold).then_some(d))
    }

    /// Record the squared distance for entry `id`. First write wins —
    /// the square is a pure function of (query, entry), so any repeat
    /// is bitwise the stored value anyway. A NaN square is stored but
    /// never returned by [`HullMemo::get`]; re-evaluation reproduces it.
    // audit: no_alloc — grows to the largest entry id once, then reuses.
    pub fn insert(&mut self, id: usize, sq: f64) {
        if id >= self.sq.len() {
            self.sq.resize(id + 1, f64::NAN);
        }
        if self.sq[id].is_nan() {
            self.sq[id] = sq;
            self.touched.push(id);
        }
    }

    /// Forget every recorded entry in O(recorded), keeping allocations.
    pub fn clear(&mut self) {
        for &id in &self.touched {
            self.sq[id] = f64::NAN;
        }
        self.touched.clear();
    }
}

/// Reusable per-search buffers for [`DbchTree::knn_with_scratch`]
/// (`DbchTree` is in [`crate::dbch`]): the candidate heap, the best-first
/// node queue, the `Dist_PAR` partition buffer, and the per-query
/// [`HullMemo`]. One instance per
/// worker turns steady-state k-NN into an allocation-free loop, which is
/// what the parallel multi-query engine in [`crate::parallel`] relies on.
///
/// Reusing a scratch **never changes results**: both heaps are cleared
/// at the start of every search, the partition buffer is cleared by
/// every distance call, and the buffered `Dist_PAR` is bit-for-bit the
/// streaming one.
#[derive(Debug, Default)]
pub struct KnnScratch {
    pub(crate) results: KnnHeap,
    // Best-first queue of (node distance, node id, node depth). Depth
    // rides along purely for the per-level fanout lanes: node ids are
    // unique in the queue, so comparisons never reach the depth field
    // and the pop order is bit-identical to the (distance, id) queue.
    pub(crate) nodes:
        std::collections::BinaryHeap<std::cmp::Reverse<(sapla_core::OrdF64, usize, usize)>>,
    pub(crate) dist: sapla_distance::ParScratch,
    pub(crate) hull: HullMemo,
}

impl KnnScratch {
    /// Fresh scratch (equivalent to `Default::default()`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Clear all buffers and size the result heap for `k` neighbours.
    pub(crate) fn reset(&mut self, k: usize) -> &mut Self {
        self.results.reset(k);
        self.nodes.clear();
        self.hull.clear();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics() {
        let s = SearchStats {
            retrieved: vec![3, 1, 4],
            distances: vec![0.5, 1.0, 2.0],
            measured: 20,
            total: 100,
        };
        assert!((s.pruning_power() - 0.2).abs() < 1e-12);
        assert!((s.accuracy(&[1, 2, 3]) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.accuracy(&[]), 1.0);
    }

    #[test]
    fn drain_into_reuses_buffers_and_matches_drain_sorted() {
        let mut h = KnnHeap::new(3);
        let mut ids = vec![99, 98]; // stale content must be cleared
        let mut dists = vec![-1.0];
        for round in 0..3 {
            h.reset(3);
            for (d, id) in [(4.0, 7), (2.0, 1), (9.0, 5), (3.0, 2)] {
                h.push(d + round as f64 * 0.0, id);
            }
            h.drain_into(&mut ids, &mut dists);
            assert_eq!(ids, vec![1, 2, 7], "round {round}");
            assert_eq!(dists, vec![2.0, 3.0, 4.0], "round {round}");
        }
    }

    #[test]
    fn knn_heap_keeps_k_best() {
        let mut h = KnnHeap::new(2);
        assert_eq!(h.threshold(), f64::INFINITY);
        h.push(5.0, 0);
        h.push(1.0, 1);
        assert_eq!(h.threshold(), 5.0);
        h.push(3.0, 2);
        assert_eq!(h.threshold(), 3.0);
        let (ids, dists) = h.into_sorted();
        assert_eq!(ids, vec![1, 2]);
        assert_eq!(dists, vec![1.0, 3.0]);
    }
}
