//! Per-method indexing schemes: feature vectors for R-tree MBRs,
//! query-to-MBR lower bounds (MINDIST), query-to-representation distances
//! and representation-pair distances (for DBCH hulls).
//!
//! The adaptive methods use the APCA-style MBR over interleaved
//! coefficients (the construction whose overlap problem motivates the
//! DBCH-tree); equal-length methods use their classic coefficient-space
//! bounds.

use sapla_baselines::sax::gaussian_breakpoints;
use sapla_baselines::{ReduceScratch, Reducer};
use sapla_core::{Error, PrefixSums, Representation, Result, TimeSeries};
use sapla_distance::{
    dist_paa, dist_par, dist_par_sq_planned, dist_par_sq_planned_soa, dist_par_sq_with, dist_pla,
    dist_s_sq, mindist, rep_distance, safe_sq_bound, QueryPlan, SoaSegs,
};

use crate::rect::HyperRect;

/// A query prepared for index search: raw series, its prefix sums, its
/// reduced representation under the indexed method, and — for linear
/// representations — the query-compiled `Dist_PAR` plan.
#[derive(Debug, Clone)]
pub struct Query {
    /// The raw query series.
    pub raw: TimeSeries,
    /// Prefix sums of the raw series (for `Dist_LB`-style projections).
    pub sums: PrefixSums,
    /// The query's own reduced representation.
    pub rep: Representation,
    /// Query-compiled `Dist_PAR` plan (linear representations only).
    /// `None` disables the planned kernels — search falls back to the
    /// unplanned reference path with identical results; the equivalence
    /// proptests strip this field to pin that.
    pub plan: Option<QueryPlan>,
}

impl Query {
    /// Reduce `raw` with `reducer` at budget `m` and package the query.
    ///
    /// # Errors
    ///
    /// Propagates reduction failures.
    pub fn new(raw: &TimeSeries, reducer: &dyn Reducer, m: usize) -> Result<Query> {
        Self::with_scratch(raw, reducer, m, &mut ReduceScratch::new())
    }

    /// [`Query::new`] with a caller-provided reduction workspace — same
    /// result, reused buffers. The batch preparation path
    /// ([`crate::parallel::prepare_queries`]) holds one per worker.
    ///
    /// # Errors
    ///
    /// Propagates reduction failures.
    pub fn with_scratch(
        raw: &TimeSeries,
        reducer: &dyn Reducer,
        m: usize,
        scratch: &mut ReduceScratch,
    ) -> Result<Query> {
        let rep = reducer.reduce_with_scratch(raw, m, scratch)?;
        let plan = rep.as_linear().map(QueryPlan::new);
        Ok(Query { raw: raw.clone(), sums: raw.prefix_sums(), rep, plan })
    }
}

/// `strict-invariants`: `Dist_LB` is the unconditional lower bound
/// (`Dist_LB(Q, Ĉ) ≤ Dist(Q, C)` for *any* series `C` with linear
/// representation `Ĉ`) — whenever a refinement step has both the
/// representation and the exact Euclidean distance in hand, recompute the
/// bound and require it to hold. `Dist_PAR` is deliberately **not**
/// checked here: the paper's Theorems 4.2/4.3 make it conditional.
///
/// `slack` widens the bound for quantized snapshot leaves: a stored
/// representation `Ĉ~` perturbed from the least-squares projection `Ĉ`
/// by at most `δ` in the windowed metric satisfies
/// `Dist_LB(Q, Ĉ~) ≤ Dist(Q, C) + δ` (triangle inequality in the
/// projection subspace — endpoints are preserved exactly, so `Q`
/// projects onto the *same* subspace). Exact trees pass `0.0` and keep
/// the original unconditional contract.
#[cfg(feature = "strict-invariants")]
pub(crate) fn assert_lb_le_exact(
    q: &Query,
    rep: &Representation,
    exact: f64,
    slack: f64,
) -> Result<()> {
    if let Some(linear) = rep.as_linear() {
        let lb = sapla_distance::dist_lb(&q.sums, linear)?;
        assert!(
            lb <= exact + slack + 1e-6 * (1.0 + exact),
            "strict-invariants: Dist_LB = {lb} exceeds the exact Euclidean distance {exact} \
             (+ quantization slack {slack}); the lower-bound contract is broken"
        );
    }
    Ok(())
}

/// The per-method indexing strategy.
pub trait Scheme: Send + Sync {
    /// Scheme name (matches the reducer name).
    fn name(&self) -> &'static str;

    /// Feature vector whose MBRs the R-tree maintains.
    fn feature(&self, rep: &Representation) -> Result<Vec<f64>>;

    /// Lower-bound distance from the query to anything inside `rect`
    /// (the R-tree node filter).
    fn mindist(&self, q: &Query, rect: &HyperRect) -> Result<f64>;

    /// Distance estimate from the query to a candidate's representation
    /// (the leaf-level filter; `Dist_PAR` for the adaptive methods).
    fn rep_dist(&self, q: &Query, rep: &Representation) -> Result<f64>;

    /// [`Scheme::rep_dist`] with a reusable partition buffer. The result
    /// is **identical** to `rep_dist` — schemes whose distance allocates
    /// (the adaptive `Dist_PAR`) override this to reuse `scratch` in hot
    /// multi-query loops; the default ignores it.
    fn rep_dist_with(
        &self,
        q: &Query,
        rep: &Representation,
        scratch: &mut sapla_distance::ParScratch,
    ) -> Result<f64> {
        let _ = scratch;
        self.rep_dist(q, rep)
    }

    /// [`Scheme::rep_dist_with`] plus its memoisable squared form.
    /// Schemes that compute the distance as `sq.sqrt()` over an exact
    /// squared accumulation return `(sq.sqrt(), Some(sq))` and promise
    /// that **every** filter decision ([`Scheme::rep_dist_pruned`] /
    /// [`Scheme::rep_dist_pruned_soa`]) is equivalent to
    /// `sq.sqrt() <= threshold` with kept value `sq.sqrt()` — that lets
    /// callers cache `sq` per (query, entry) and replay later
    /// evaluations of the same pair bitwise (the DBCH hull memo in
    /// [`crate::knn`]). The default returns no square, which disables
    /// such caching.
    fn rep_dist_sq_with(
        &self,
        q: &Query,
        rep: &Representation,
        scratch: &mut sapla_distance::ParScratch,
    ) -> Result<(f64, Option<f64>)> {
        Ok((self.rep_dist_with(q, rep, scratch)?, None))
    }

    /// Whether this scheme's leaf refinement can run the query-compiled
    /// `Dist_PAR` kernels over SoA candidate blocks (when the query
    /// carries a plan). Trees consult this before taking the
    /// [`Scheme::rep_dist_pruned_soa`] fast path.
    fn supports_par_plan(&self) -> bool {
        false
    }

    /// Threshold-aware leaf filter: `Some(d)` when the candidate passes
    /// (`d <= threshold`, with `d` bitwise equal to
    /// [`Scheme::rep_dist_with`]'s result), `None` when it is pruned.
    /// The contract is that `rep_dist_pruned(..).is_some()` agrees
    /// exactly with `rep_dist_with(..) <= threshold` — schemes may
    /// early-abandon the distance computation as long as that holds.
    /// The default computes the full distance and compares.
    fn rep_dist_pruned(
        &self,
        q: &Query,
        rep: &Representation,
        threshold: f64,
        scratch: &mut sapla_distance::ParScratch,
    ) -> Result<Option<f64>> {
        let d = self.rep_dist_with(q, rep, scratch)?;
        Ok((d <= threshold).then_some(d))
    }

    /// [`Scheme::rep_dist_pruned`] over an SoA candidate view from a
    /// tree's contiguous leaf block. Only called when
    /// [`Scheme::supports_par_plan`] is true and the query carries a
    /// plan; the default therefore errors.
    fn rep_dist_pruned_soa(
        &self,
        q: &Query,
        cand: SoaSegs<'_>,
        threshold: f64,
        scratch: &mut sapla_distance::ParScratch,
    ) -> Result<Option<f64>> {
        let _ = (q, cand, threshold, scratch);
        Err(Error::UnsupportedRepresentation { operation: "SoA leaf refinement" })
    }

    /// Distance between two representations (DBCH hull construction and
    /// node volumes).
    fn pair_dist(&self, a: &Representation, b: &Representation) -> Result<f64> {
        rep_distance(a, b)
    }
}

/// Pick the scheme matching a reducer name.
///
/// # Errors
///
/// [`Error::UnknownMethod`] on a name outside the closed set of Table 1.
pub fn scheme_for(name: &str) -> Result<Box<dyn Scheme>> {
    match name {
        "SAPLA" | "APLA" => Ok(Box::new(AdaptiveLinearScheme::default())),
        "APCA" => Ok(Box::new(ApcaScheme)),
        "PLA" => Ok(Box::new(PlaScheme)),
        "PAA" | "PAALM" => Ok(Box::new(PaaScheme)),
        "CHEBY" => Ok(Box::new(ChebyScheme)),
        "SAX" => Ok(Box::new(SaxScheme)),
        other => Err(Error::UnknownMethod { name: other.to_string() }),
    }
}

fn expect_linear(rep: &Representation) -> Result<&sapla_core::PiecewiseLinear> {
    rep.as_linear().ok_or(Error::UnsupportedRepresentation { operation: "linear scheme" })
}

/// Interval distance squared from a point to `[lo, hi]`.
#[inline]
fn interval_sq(x: f64, lo: f64, hi: f64) -> f64 {
    let d = if x < lo {
        lo - x
    } else if x > hi {
        x - hi
    } else {
        0.0
    };
    d * d
}

/// Shared APCA-MBR point bound: given per-region `(t_min, t_max, v_min,
/// v_max)`, lower-bound the per-point distance of the raw query to any
/// member series' reconstruction region, summed over all points.
fn region_mindist(regions: &[(usize, usize, f64, f64)], raw: &[f64]) -> f64 {
    let n = raw.len();
    let mut best = vec![f64::INFINITY; n];
    for &(t0, t1, vmin, vmax) in regions {
        for t in t0..=t1.min(n - 1) {
            let d = interval_sq(raw[t], vmin, vmax);
            if d < best[t] {
                best[t] = d;
            }
        }
    }
    best.iter().map(|&d| if d.is_finite() { d } else { 0.0 }).sum::<f64>().sqrt()
}

// ---------------------------------------------------------------------
// Adaptive linear (SAPLA, APLA): features ⟨a_i, b_i, r_i⟩ interleaved.
// ---------------------------------------------------------------------

/// Scheme for SAPLA/APLA representations.
///
/// When the query carries a [`QueryPlan`], every representation distance
/// runs the query-compiled kernels (bit-identical results); with
/// `abandon` set (the default), the threshold-aware leaf filter
/// additionally early-abandons the window accumulation against
/// [`safe_sq_bound`] of the running threshold — provably
/// decision-identical to the full comparison.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveLinearScheme {
    /// Early-abandon the planned leaf filter (on by default; turning it
    /// off is for the on/off equivalence tests and stock benchmarks).
    pub abandon: bool,
}

impl Default for AdaptiveLinearScheme {
    fn default() -> Self {
        AdaptiveLinearScheme { abandon: true }
    }
}

impl Scheme for AdaptiveLinearScheme {
    fn name(&self) -> &'static str {
        "AdaptiveLinear"
    }

    fn feature(&self, rep: &Representation) -> Result<Vec<f64>> {
        let lin = expect_linear(rep)?;
        let mut out = Vec::with_capacity(3 * lin.num_segments());
        for seg in lin.segments() {
            out.push(seg.a);
            out.push(seg.b);
            out.push(seg.r as f64);
        }
        Ok(out)
    }

    fn mindist(&self, q: &Query, rect: &HyperRect) -> Result<f64> {
        let n = q.raw.len();
        let segs = rect.dims() / 3;
        let mut regions = Vec::with_capacity(segs);
        let mut prev_r_lo = -1.0f64;
        for i in 0..segs {
            let (alo, ahi) = rect.dim(3 * i);
            let (blo, bhi) = rect.dim(3 * i + 1);
            let (rlo, rhi) = rect.dim(3 * i + 2);
            // audit: cast_ok — window start, clamped non-negative by max(0.0).
            let t0 = (prev_r_lo + 1.0).max(0.0) as usize;
            // audit: cast_ok — window end, clamped into [0, n) by min().
            let t1 = (rhi.min((n - 1) as f64)) as usize;
            let lmax = (t1 as f64 - prev_r_lo).max(1.0);
            // Value envelope of a·u + b over u ∈ [0, lmax−1], a ∈ [alo,
            // ahi], b ∈ [blo, bhi]: extremes at the u-endpoints.
            let vmin = blo.min(alo * (lmax - 1.0) + blo);
            let vmax = bhi.max(ahi * (lmax - 1.0) + bhi);
            regions.push((t0, t1, vmin, vmax));
            prev_r_lo = rlo;
        }
        Ok(region_mindist(&regions, q.raw.values()))
    }

    fn rep_dist(&self, q: &Query, rep: &Representation) -> Result<f64> {
        dist_par(expect_linear(&q.rep)?, expect_linear(rep)?)
    }

    fn rep_dist_with(
        &self,
        q: &Query,
        rep: &Representation,
        scratch: &mut sapla_distance::ParScratch,
    ) -> Result<f64> {
        self.rep_dist_sq_with(q, rep, scratch).map(|(d, _)| d)
    }

    // `Dist_PAR` is `sq.sqrt()` in every path, the planned filters
    // decide via `keep_below` (abandon ⟺ full square > bound, by the
    // monotone ≥ 0 Eq. 12 terms), and the unplanned filter compares
    // `sq.sqrt() <= threshold` directly — so the square is memoisable
    // per the trait contract.
    fn rep_dist_sq_with(
        &self,
        q: &Query,
        rep: &Representation,
        scratch: &mut sapla_distance::ParScratch,
    ) -> Result<(f64, Option<f64>)> {
        let cand = expect_linear(rep)?;
        let sq = match &q.plan {
            // Planned, no abandoning: bit-identical to the unplanned walk.
            Some(plan) => dist_par_sq_planned(plan, cand, scratch, f64::INFINITY)?,
            None => dist_par_sq_with(scratch, expect_linear(&q.rep)?, cand)?,
        };
        Ok((sq.sqrt(), Some(sq)))
    }

    fn supports_par_plan(&self) -> bool {
        true
    }

    fn rep_dist_pruned(
        &self,
        q: &Query,
        rep: &Representation,
        threshold: f64,
        scratch: &mut sapla_distance::ParScratch,
    ) -> Result<Option<f64>> {
        let Some(plan) = &q.plan else {
            let d = self.rep_dist_with(q, rep, scratch)?;
            return Ok((d <= threshold).then_some(d));
        };
        let bound = if self.abandon { safe_sq_bound(threshold) } else { f64::INFINITY };
        let sq = dist_par_sq_planned(plan, expect_linear(rep)?, scratch, bound)?;
        Ok(keep_below(sq, threshold))
    }

    fn rep_dist_pruned_soa(
        &self,
        q: &Query,
        cand: SoaSegs<'_>,
        threshold: f64,
        scratch: &mut sapla_distance::ParScratch,
    ) -> Result<Option<f64>> {
        let Some(plan) = &q.plan else {
            return Err(Error::UnsupportedRepresentation {
                operation: "SoA leaf refinement without a query plan",
            });
        };
        let bound = if self.abandon { safe_sq_bound(threshold) } else { f64::INFINITY };
        let sq = dist_par_sq_planned_soa(plan, cand, scratch, bound)?;
        Ok(keep_below(sq, threshold))
    }
}

/// Turn a (possibly abandoned) planned `Dist_PAR²` into the leaf-filter
/// decision. The `f64::INFINITY` abandon sentinel only arises under a
/// finite threshold, where the reference comparison would prune too; a
/// *genuine* infinite squared distance also (correctly) fails any finite
/// threshold, and under `threshold = +∞` abandoning is disabled so the
/// `INF <= INF` keep-decision matches the reference exactly.
fn keep_below(sq: f64, threshold: f64) -> Option<f64> {
    if sq.is_infinite() && threshold.is_finite() {
        return None;
    }
    let d = sq.sqrt();
    (d <= threshold).then_some(d)
}

// ---------------------------------------------------------------------
// APCA: features ⟨v_i, r_i⟩ interleaved.
// ---------------------------------------------------------------------

/// Scheme for APCA representations.
#[derive(Debug, Clone, Copy, Default)]
pub struct ApcaScheme;

impl Scheme for ApcaScheme {
    fn name(&self) -> &'static str {
        "APCA"
    }

    fn feature(&self, rep: &Representation) -> Result<Vec<f64>> {
        let con = rep
            .as_constant()
            .ok_or(Error::UnsupportedRepresentation { operation: "APCA scheme" })?;
        let mut out = Vec::with_capacity(2 * con.num_segments());
        for seg in con.segments() {
            out.push(seg.v);
            out.push(seg.r as f64);
        }
        Ok(out)
    }

    fn mindist(&self, q: &Query, rect: &HyperRect) -> Result<f64> {
        let n = q.raw.len();
        let segs = rect.dims() / 2;
        let mut regions = Vec::with_capacity(segs);
        let mut prev_r_lo = -1.0f64;
        for i in 0..segs {
            let (vlo, vhi) = rect.dim(2 * i);
            let (rlo, rhi) = rect.dim(2 * i + 1);
            // audit: cast_ok — window start, clamped non-negative by max(0.0).
            let t0 = (prev_r_lo + 1.0).max(0.0) as usize;
            // audit: cast_ok — window end, clamped into [0, n) by min().
            let t1 = (rhi.min((n - 1) as f64)) as usize;
            regions.push((t0, t1, vlo, vhi));
            prev_r_lo = rlo;
        }
        Ok(region_mindist(&regions, q.raw.values()))
    }

    fn rep_dist(&self, q: &Query, rep: &Representation) -> Result<f64> {
        rep_distance(&q.rep, rep)
    }
}

// ---------------------------------------------------------------------
// PLA: features ⟨a_i, b_i⟩, equal windows; per-segment box minimisation.
// ---------------------------------------------------------------------

/// Scheme for equal-length PLA representations.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlaScheme;

/// Exact minimum of `Dist_S²` (Eq. 12) over a coefficient box: the form is
/// convex in `(Δa, Δb)`, so the minimum is either zero (box contains the
/// query's coefficients) or attained on one of the four edges, each a
/// clamped 1-D quadratic.
fn min_dist_s_sq_over_box(
    qa: f64,
    qb: f64,
    (alo, ahi): (f64, f64),
    (blo, bhi): (f64, f64),
    l: usize,
) -> f64 {
    if qa >= alo && qa <= ahi && qb >= blo && qb <= bhi {
        return 0.0;
    }
    let lf = l as f64;
    let big_a = lf * (lf - 1.0) * (2.0 * lf - 1.0) / 6.0;
    let big_b = lf * (lf - 1.0);
    let big_c = lf;
    let eval = |ca: f64, cb: f64| dist_s_sq(qa, qb, ca, cb, l);
    let mut best = f64::INFINITY;
    // Edges a = alo and a = ahi: minimise over cb.
    for ca in [alo, ahi] {
        let x = qa - ca;
        // d/dΔb (A x² + B x Δb + C Δb²) = 0 → Δb = −Bx / 2C.
        let cb = (qb + big_b * x / (2.0 * big_c)).clamp(blo, bhi);
        best = best.min(eval(ca, cb));
    }
    // Edges b = blo and b = bhi: minimise over ca.
    for cb in [blo, bhi] {
        let y = qb - cb;
        let ca = (qa + big_b * y / (2.0 * big_a)).clamp(alo, ahi);
        best = best.min(eval(ca, cb));
    }
    best
}

impl Scheme for PlaScheme {
    fn name(&self) -> &'static str {
        "PLA"
    }

    fn feature(&self, rep: &Representation) -> Result<Vec<f64>> {
        let lin = expect_linear(rep)?;
        let mut out = Vec::with_capacity(2 * lin.num_segments());
        for seg in lin.segments() {
            out.push(seg.a);
            out.push(seg.b);
        }
        Ok(out)
    }

    fn mindist(&self, q: &Query, rect: &HyperRect) -> Result<f64> {
        let qlin = expect_linear(&q.rep)?;
        let segs = rect.dims() / 2;
        if qlin.num_segments() != segs {
            return Err(Error::MalformedRepresentation {
                reason: "PLA query/index segment counts differ",
            });
        }
        let mut sum = 0.0;
        for (i, seg) in qlin.segments().iter().enumerate() {
            let l = qlin.seg_len(i);
            sum += min_dist_s_sq_over_box(seg.a, seg.b, rect.dim(2 * i), rect.dim(2 * i + 1), l);
        }
        Ok(sum.sqrt())
    }

    fn rep_dist(&self, q: &Query, rep: &Representation) -> Result<f64> {
        dist_pla(expect_linear(&q.rep)?, expect_linear(rep)?)
    }
}

// ---------------------------------------------------------------------
// PAA / PAALM: features ⟨v_i⟩, equal windows.
// ---------------------------------------------------------------------

/// Scheme for PAA/PAALM representations.
#[derive(Debug, Clone, Copy, Default)]
pub struct PaaScheme;

impl Scheme for PaaScheme {
    fn name(&self) -> &'static str {
        "PAA"
    }

    fn feature(&self, rep: &Representation) -> Result<Vec<f64>> {
        let con = rep
            .as_constant()
            .ok_or(Error::UnsupportedRepresentation { operation: "PAA scheme" })?;
        Ok(con.segments().iter().map(|s| s.v).collect())
    }

    fn mindist(&self, q: &Query, rect: &HyperRect) -> Result<f64> {
        let qcon = q
            .rep
            .as_constant()
            .ok_or(Error::UnsupportedRepresentation { operation: "PAA scheme" })?;
        if qcon.num_segments() != rect.dims() {
            return Err(Error::MalformedRepresentation {
                reason: "PAA query/index segment counts differ",
            });
        }
        let mut sum = 0.0;
        let mut start = 0usize;
        for (i, seg) in qcon.segments().iter().enumerate() {
            let l = (seg.r + 1 - start) as f64;
            let (lo, hi) = rect.dim(i);
            sum += l * interval_sq(seg.v, lo, hi);
            start = seg.r + 1;
        }
        Ok(sum.sqrt())
    }

    fn rep_dist(&self, q: &Query, rep: &Representation) -> Result<f64> {
        let qcon = q
            .rep
            .as_constant()
            .ok_or(Error::UnsupportedRepresentation { operation: "PAA scheme" })?;
        let ccon = rep
            .as_constant()
            .ok_or(Error::UnsupportedRepresentation { operation: "PAA scheme" })?;
        dist_paa(qcon, ccon)
    }
}

// ---------------------------------------------------------------------
// CHEBY: features = coefficients; Parseval point-to-box bound.
// ---------------------------------------------------------------------

/// Scheme for CHEBY (polynomial) representations.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChebyScheme;

impl Scheme for ChebyScheme {
    fn name(&self) -> &'static str {
        "CHEBY"
    }

    fn feature(&self, rep: &Representation) -> Result<Vec<f64>> {
        match rep {
            Representation::Polynomial(p) => Ok(p.coeffs.clone()),
            _ => Err(Error::UnsupportedRepresentation { operation: "CHEBY scheme" }),
        }
    }

    fn mindist(&self, q: &Query, rect: &HyperRect) -> Result<f64> {
        let qc = self.feature(&q.rep)?;
        if qc.len() != rect.dims() {
            return Err(Error::MalformedRepresentation {
                reason: "CHEBY query/index coefficient counts differ",
            });
        }
        Ok(rect.min_sq_dist_point(&qc).sqrt())
    }

    fn rep_dist(&self, q: &Query, rep: &Representation) -> Result<f64> {
        rep_distance(&q.rep, rep)
    }
}

// ---------------------------------------------------------------------
// SAX: features = symbol indices; MINDIST to the symbol box.
// ---------------------------------------------------------------------

/// Scheme for SAX words.
#[derive(Debug, Clone, Copy, Default)]
pub struct SaxScheme;

impl Scheme for SaxScheme {
    fn name(&self) -> &'static str {
        "SAX"
    }

    fn feature(&self, rep: &Representation) -> Result<Vec<f64>> {
        match rep {
            Representation::Symbolic(w) => Ok(w.symbols.iter().map(|&s| s as f64).collect()),
            _ => Err(Error::UnsupportedRepresentation { operation: "SAX scheme" }),
        }
    }

    fn mindist(&self, q: &Query, rect: &HyperRect) -> Result<f64> {
        let qw = match &q.rep {
            Representation::Symbolic(w) => w,
            _ => return Err(Error::UnsupportedRepresentation { operation: "SAX scheme" }),
        };
        if qw.symbols.len() != rect.dims() {
            return Err(Error::MalformedRepresentation {
                reason: "SAX query/index word lengths differ",
            });
        }
        let bp = gaussian_breakpoints(qw.alphabet_size);
        let cell = |a: usize, b: usize| -> f64 {
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            if hi - lo <= 1 {
                0.0
            } else {
                bp[hi - 1] - bp[lo]
            }
        };
        let mut sum = 0.0;
        for (i, &qs) in qw.symbols.iter().enumerate() {
            let (lo, hi) = rect.dim(i);
            // Nearest symbol inside the box (cell distance is monotone in
            // symbol separation).
            let nearest = (qs as f64).clamp(lo.ceil(), hi.floor().max(lo.ceil()));
            let d = cell(qs as usize, nearest as usize);
            sum += d * d;
        }
        let w = qw.symbols.len() as f64;
        Ok((qw.n as f64 / w).sqrt() * sum.sqrt())
    }

    fn rep_dist(&self, q: &Query, rep: &Representation) -> Result<f64> {
        match (&q.rep, rep) {
            (Representation::Symbolic(a), Representation::Symbolic(b)) => mindist(a, b),
            _ => Err(Error::UnsupportedRepresentation { operation: "SAX scheme" }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapla_baselines::{all_reducers, Pla};

    fn series(seed: usize) -> TimeSeries {
        TimeSeries::new(
            (0..64)
                .map(|t| ((t * (seed + 3)) as f64 * 0.17).sin() * 2.0 + seed as f64 * 0.1)
                .collect(),
        )
        .unwrap()
        .znormalized()
    }

    #[test]
    fn every_method_produces_features_and_distances() {
        let m = 12;
        let db = series(1);
        let qr = series(2);
        for reducer in all_reducers() {
            let scheme = scheme_for(reducer.name()).unwrap();
            let rep = reducer.reduce(&db, m).unwrap();
            let feat = scheme.feature(&rep).unwrap();
            assert!(!feat.is_empty(), "{}", reducer.name());
            let q = Query::new(&qr, reducer.as_ref(), m).unwrap();
            let d = scheme.rep_dist(&q, &rep).unwrap();
            assert!(d.is_finite() && d >= 0.0, "{}", reducer.name());
            let rect = HyperRect::point(&feat);
            let md = scheme.mindist(&q, &rect).unwrap();
            assert!(md.is_finite() && md >= 0.0, "{}", reducer.name());
        }
    }

    #[test]
    fn mindist_is_below_rep_dist_for_point_rects() {
        // A node containing exactly one entry must not filter more
        // aggressively than the leaf-level distance allows... for the
        // methods whose node bound provably relaxes the rep distance
        // (equal-length coefficient-space schemes).
        let m = 12;
        let db = series(5);
        let qr = series(7);
        for name in ["PLA", "PAA", "CHEBY", "SAX"] {
            let reducer: Box<dyn Reducer> = match name {
                "PLA" => Box::new(Pla),
                "PAA" => Box::new(sapla_baselines::Paa),
                "CHEBY" => Box::new(sapla_baselines::Cheby),
                _ => Box::new(sapla_baselines::Sax::default()),
            };
            let scheme = scheme_for(name).unwrap();
            let rep = reducer.reduce(&db, m).unwrap();
            let q = Query::new(&qr, reducer.as_ref(), m).unwrap();
            let rect = HyperRect::point(&scheme.feature(&rep).unwrap());
            let md = scheme.mindist(&q, &rect).unwrap();
            let rd = scheme.rep_dist(&q, &rep).unwrap();
            assert!(md <= rd + 1e-6, "{name}: mindist {md} > rep_dist {rd}");
        }
    }

    #[test]
    fn unknown_scheme_is_an_error() {
        let Err(err) = scheme_for("WAVELETS") else {
            panic!("WAVELETS must not resolve to a scheme");
        };
        assert_eq!(err, Error::UnknownMethod { name: "WAVELETS".to_string() });
        assert!(err.to_string().contains("WAVELETS"));
    }

    #[test]
    fn scheme_names_cover_every_method() {
        for reducer in all_reducers() {
            let scheme = scheme_for(reducer.name()).unwrap();
            assert!(!scheme.name().is_empty());
        }
    }

    #[test]
    fn min_dist_s_over_box_is_a_true_minimum() {
        let (qa, qb, l) = (1.2, -0.5, 9usize);
        let abox = (0.0, 0.5);
        let bbox = (0.5, 1.5);
        let bound = min_dist_s_sq_over_box(qa, qb, abox, bbox, l);
        // Grid-check that no box point does better.
        let mut grid_min = f64::INFINITY;
        for i in 0..=40 {
            for j in 0..=40 {
                let ca = abox.0 + (abox.1 - abox.0) * i as f64 / 40.0;
                let cb = bbox.0 + (bbox.1 - bbox.0) * j as f64 / 40.0;
                grid_min = grid_min.min(dist_s_sq(qa, qb, ca, cb, l));
            }
        }
        assert!(bound <= grid_min + 1e-9, "bound {bound} > grid {grid_min}");
        assert!(bound >= grid_min - 0.05 * grid_min.max(1e-9), "bound too loose");
        // Inside the box → zero.
        assert_eq!(min_dist_s_sq_over_box(0.2, 1.0, abox, bbox, l), 0.0);
    }

    #[test]
    fn mindist_lower_bounds_every_member_rep_dist() {
        // For any rect covering a set of features, mindist(q, rect) must
        // not exceed the smallest rep_dist(q, member) — otherwise the node
        // filter would prune entries its own leaf filter would keep.
        let m = 12;
        let members: Vec<TimeSeries> = (0..10).map(series).collect();
        let q_raw = series(99);
        for reducer in all_reducers() {
            let scheme = scheme_for(reducer.name()).unwrap();
            let reps: Vec<_> = members.iter().map(|s| reducer.reduce(s, m).unwrap()).collect();
            let mut rect = HyperRect::point(&scheme.feature(&reps[0]).unwrap());
            for rep in &reps[1..] {
                rect.extend_point(&scheme.feature(rep).unwrap());
            }
            let q = Query::new(&q_raw, reducer.as_ref(), m).unwrap();
            let md = scheme.mindist(&q, &rect).unwrap();
            let min_rep =
                reps.iter().map(|r| scheme.rep_dist(&q, r).unwrap()).fold(f64::INFINITY, f64::min);
            // Adaptive schemes bound the *raw* query against reconstruction
            // regions rather than the rep distance, so give them headroom;
            // the equal-length schemes must hold exactly.
            let slack = match reducer.name() {
                "SAPLA" | "APLA" | "APCA" => 1.30,
                _ => 1.0 + 1e-9,
            };
            assert!(
                md <= min_rep * slack + 1e-9,
                "{}: mindist {md} > min member dist {min_rep}",
                reducer.name()
            );
        }
    }

    #[test]
    fn adaptive_mindist_grows_with_query_offset() {
        let reducer = sapla_baselines::SaplaReducer::new();
        let scheme = AdaptiveLinearScheme::default();
        let db = series(3);
        let rep = reducer.reduce(&db, 12).unwrap();
        let rect = HyperRect::point(&scheme.feature(&rep).unwrap());
        let q_near = Query::new(&db, &reducer, 12).unwrap();
        let far_series = TimeSeries::new(db.values().iter().map(|v| v + 5.0).collect()).unwrap();
        let q_far = Query {
            raw: far_series.clone(),
            sums: far_series.prefix_sums(),
            rep: q_near.rep.clone(),
            plan: q_near.plan.clone(),
        };
        let d_near = scheme.mindist(&q_near, &rect).unwrap();
        let d_far = scheme.mindist(&q_far, &rect).unwrap();
        assert!(d_far > d_near + 1.0, "near {d_near}, far {d_far}");
    }
}
