//! Query-major batched k-NN: evaluate a block of queries against each
//! leaf while its SoA mirror is cache-hot.
//!
//! The classic driver is query-at-a-time: one query walks the whole
//! tree, streaming every surviving leaf block through the planned
//! kernel, before the next query starts — so with `Q` queries each leaf
//! block is pulled through the cache up to `Q` times. This module flips
//! the inner loop. A block of queries advances in *rounds*: in each
//! round every still-active query walks its own best-first frontier
//! (internal nodes expanded inline) until it yields its next leaf; the
//! pending `(leaf, query)` pairs are then sorted by leaf and evaluated
//! leaf-by-leaf, so all queries that reached the same leaf in the same
//! round run over its slopes/intercepts/endpoints back-to-back.
//!
//! **Bit-identity.** Each query's result is a pure function of the tree
//! and its own search state — candidate heap, node queue, thresholds —
//! none of which is shared across queries. The round structure only
//! interleaves *which query runs next*; within one query the operation
//! sequence (node pops, bound computations, filter decisions,
//! refinements, heap pushes) is exactly the sequential one. The
//! `knn_batch` / engine regression tests pin this bitwise over the
//! DBCH-tree, the R-tree, and the linear scan at several thread counts.
//!
//! Implemented over the [`BatchTree`] trait so the DBCH-tree and the
//! R-tree share one driver — and one copy of the leaf filter/refinement
//! body ([`eval_leaf_entries`]), which their sequential searches use
//! too.

use std::cmp::Reverse;

use sapla_core::{Error, OrdF64, Representation, Result, TimeSeries};
use sapla_distance::{euclidean_early_abandon, safe_sq_bound, ParScratch};

use crate::knn::{HullMemo, KnnHeap, KnnScratch, SearchStats, SearchTally};
use crate::scheme::{Query, Scheme};
use crate::soa::LeafBlock;

/// How many queries ride in one co-scheduled block by default. Large
/// enough that shared leaves amortise a block fetch across many
/// queries, small enough that a block's heaps and scratches stay
/// resident next to the leaf data (the perf harness sweeps 1/4/16).
pub const DEFAULT_QUERY_BLOCK: usize = 16;

/// One node of a [`BatchTree`], as the driver sees it.
pub(crate) enum NodeView<'a> {
    /// Child node ids.
    Internal(&'a [usize]),
    /// Entry ids held by a leaf.
    Leaf(&'a [usize]),
}

/// The tree shape the query-major driver walks — implemented by
/// [`crate::dbch::DbchTree`] (hull bounds) and [`crate::rtree::RTree`]
/// (MINDIST bounds), and by the engine's shard wrapper.
pub(crate) trait BatchTree {
    /// Root node id (meaningless when [`BatchTree::is_empty`]).
    fn root(&self) -> usize;
    /// `true` iff the tree holds no entries.
    fn is_empty(&self) -> bool;
    /// Stored representations, entry-id order.
    fn reps(&self) -> &[Representation];
    /// Children of an internal node / entries of a leaf.
    fn node_view(&self, nid: usize) -> NodeView<'_>;
    /// The leaf's SoA mirror, if coherent with `n_entries` entries.
    fn leaf_block(&self, nid: usize, n_entries: usize) -> Option<&LeafBlock>;
    /// Query-to-node bound (hull rule / MINDIST). The DBCH-tree records
    /// the squared hull-representative distances it computes in `memo`
    /// for bitwise replay at the leaf filter; the R-tree's MINDIST has
    /// nothing to memoise and leaves it untouched.
    fn node_bound(
        &self,
        q: &Query,
        scheme: &dyn Scheme,
        nid: usize,
        dist: &mut ParScratch,
        memo: &mut HullMemo,
    ) -> Result<f64>;
    /// Per-level fanout accounting hook (the DBCH-tree's lane counter;
    /// the R-tree reports nothing, matching its sequential search).
    fn count_fanout(&self, _depth: usize, _children: usize) {}
    /// Additive `Dist_LB` slack the strict-invariants audit must allow
    /// for this tree's stored representations (non-zero only for trees
    /// loaded from quantized snapshot leaves, where the stored `Ĉ~` is
    /// perturbed from the least-squares `Ĉ` by at most this much in the
    /// windowed metric).
    fn lb_slack(&self) -> f64 {
        0.0
    }
}

/// Per-worker state for [`knn_query_major`]: one warm [`KnnScratch`]
/// per in-flight query plus the round's pending `(leaf, query)` pairs.
/// Reuse never changes results — every buffer is reset per block.
#[derive(Default)]
pub(crate) struct BlockScratch {
    scratches: Vec<KnnScratch>,
    pending: Vec<(usize, usize)>,
}

impl BlockScratch {
    pub(crate) fn new() -> Self {
        Self::default()
    }
}

/// Evaluate one leaf's entries for one query: representation filter
/// (SoA planned kernel when a coherent block is supplied, AoS
/// otherwise) then early-abandoning exact refinement. This is the
/// single copy of the body the DBCH-tree and R-tree sequential searches
/// used to duplicate; the query-major driver calls it per `(leaf,
/// query)` pair.
#[allow(clippy::too_many_arguments)] // the flattened per-query search state
pub(crate) fn eval_leaf_entries(
    q: &Query,
    scheme: &dyn Scheme,
    raws: &[TimeSeries],
    reps: &[Representation],
    entries: &[usize],
    block: Option<&LeafBlock>,
    results: &mut KnnHeap,
    dist: &mut ParScratch,
    memo: &HullMemo,
    tally: &mut SearchTally,
    lb_slack: f64,
) -> Result<()> {
    tally.consider(entries.len());
    for (j, &e) in entries.iter().enumerate() {
        let threshold = results.threshold();
        // Quantized-lineage trees store reps perturbed by up to
        // `lb_slack` in the windowed metric, so their Dist_LB can
        // overshoot the true distance by that much. Widening the filter
        // cutoff restores soundness: a candidate is pruned only when
        // even `lb - lb_slack` (a true lower bound) exceeds the
        // threshold. Exact-lineage trees have slack 0 and `t + 0.0` is
        // bitwise `t`, so their decisions are untouched.
        let prune_at = threshold + lb_slack;
        // While the result heap is not yet full the threshold is ∞ and
        // no filter can prune, so the representation distance is
        // skipped outright — the keep-decision is identical (`d ≤ ∞`).
        // Strict-invariants builds still evaluate it to keep the
        // lb ≤ exact audit on every candidate.
        let skip_filter = threshold.is_infinite() && !cfg!(feature = "strict-invariants");
        let kept = if skip_filter {
            Some(f64::INFINITY)
        } else if let Some(kept) = memo.filter(e, prune_at) {
            // A hull representative this query already evaluated fully
            // during node bounding: replaying the memoised square is
            // the identical decision and kept value (see `HullMemo`).
            sapla_obs::counter!("index.hull_memo.hits");
            kept
        } else {
            match block {
                Some(b) => scheme.rep_dist_pruned_soa(q, b.entry(j)?, prune_at, dist)?,
                None => scheme.rep_dist_pruned(q, &reps[e], prune_at, dist)?,
            }
        };
        if kept.is_some() {
            tally.measure();
            // Early-abandoning refinement: an abandoned candidate has
            // exact > threshold *strictly* (the safe_sq_bound slack
            // absorbs the t² rounding), so pushing it would pop it
            // straight back out — skipping the push leaves the heap
            // bit-identical.
            match euclidean_early_abandon(&q.raw, &raws[e], safe_sq_bound(results.threshold()))? {
                Some(exact) => {
                    #[cfg(feature = "strict-invariants")]
                    crate::scheme::assert_lb_le_exact(q, &reps[e], exact, lb_slack)?;
                    results.push(exact, e);
                }
                // The invariant lb ≤ exact holds here by construction:
                // lb ≤ threshold < exact.
                None => sapla_obs::counter!("index.knn.refine_abandoned"),
            }
        } else {
            tally.prune();
        }
    }
    Ok(())
}

/// Keep the earliest-by-query-index error: queries are independent, so
/// running every one to completion-or-failure and surfacing the
/// smallest index's error reproduces exactly what a sequential
/// query-by-query loop reports.
fn note_err(slot: &mut Option<(usize, Error)>, qi: usize, e: Error) {
    if slot.as_ref().is_none_or(|(q, _)| qi < *q) {
        *slot = Some((qi, e));
    }
}

/// Answer a block of k-NN queries query-major (see module docs):
/// round-based co-scheduling with per-leaf grouped evaluation. Results
/// are bit-for-bit the sequential per-query searches', in query order;
/// on failure the earliest (by query index) error is returned, as a
/// sequential loop would.
pub(crate) fn knn_query_major<T: BatchTree + ?Sized>(
    tree: &T,
    queries: &[Query],
    k: usize,
    scheme: &dyn Scheme,
    raws: &[TimeSeries],
    scratch: &mut BlockScratch,
) -> Result<Vec<SearchStats>> {
    let BlockScratch { scratches, pending } = scratch;
    // Node bounds over quantized-lineage reps can overshoot the true
    // distance by up to this much; every node-pruning comparison below
    // is widened by it (bitwise no-op for exact trees, slack 0.0).
    let slack = tree.lb_slack();
    scratches.resize_with(scratches.len().max(queries.len()), KnnScratch::new);
    let mut tallies = vec![SearchTally::default(); queries.len()];
    let mut done = vec![false; queries.len()];
    let mut first_err: Option<(usize, Error)> = None;

    // Seed every query's frontier with the root, in query order.
    for (qi, q) in queries.iter().enumerate() {
        let s = scratches[qi].reset(k);
        if tree.is_empty() {
            done[qi] = true;
            continue;
        }
        match tree.node_bound(q, scheme, tree.root(), &mut s.dist, &mut s.hull) {
            Ok(d) => s.nodes.push(Reverse((OrdF64::new(d), tree.root(), 0))),
            Err(e) => {
                done[qi] = true;
                note_err(&mut first_err, qi, e);
            }
        }
    }

    loop {
        // Advance phase: each active query walks its best-first
        // frontier until it yields its next leaf (or finishes).
        pending.clear();
        for (qi, q) in queries.iter().enumerate() {
            if done[qi] {
                continue;
            }
            let s = &mut scratches[qi];
            let tally = &mut tallies[qi];
            loop {
                let Some(Reverse((d, nid, depth))) = s.nodes.pop() else {
                    done[qi] = true;
                    break;
                };
                if d.get() > s.results.threshold() + slack {
                    // Best-first order: the popped node *and* everything
                    // still queued behind it are beyond the threshold.
                    tally.prune_nodes(1 + s.nodes.len());
                    s.nodes.clear();
                    done[qi] = true;
                    break;
                }
                tally.visit_node();
                match tree.node_view(nid) {
                    NodeView::Internal(children) => {
                        tree.count_fanout(depth, children.len());
                        let mut failed = false;
                        for &c in children {
                            match tree.node_bound(q, scheme, c, &mut s.dist, &mut s.hull) {
                                Ok(node_d) => {
                                    if node_d <= s.results.threshold() + slack {
                                        s.nodes.push(Reverse((OrdF64::new(node_d), c, depth + 1)));
                                    } else {
                                        tally.prune_node();
                                    }
                                }
                                Err(e) => {
                                    note_err(&mut first_err, qi, e);
                                    failed = true;
                                    break;
                                }
                            }
                        }
                        if failed {
                            done[qi] = true;
                            s.nodes.clear();
                            break;
                        }
                    }
                    NodeView::Leaf(_) => {
                        pending.push((nid, qi));
                        break;
                    }
                }
            }
        }
        if pending.is_empty() {
            break;
        }
        // Evaluate phase: group this round's pending pairs by leaf, so
        // a leaf's SoA block is fetched once and stays hot for every
        // query that reached it; within a leaf, queries run in query
        // order ((nid, qi) sort — deterministic, pairs are distinct).
        pending.sort_unstable();
        let mut i = 0;
        while i < pending.len() {
            let nid = pending[i].0;
            let mut end = i + 1;
            while end < pending.len() && pending[end].0 == nid {
                end += 1;
            }
            sapla_obs::counter!("sapla.knn.leaf_batches");
            sapla_obs::hist!("sapla.knn.query_block", (end - i) as u64);
            let entries = match tree.node_view(nid) {
                NodeView::Leaf(entries) => entries,
                // Only leaves are ever pushed to `pending`.
                NodeView::Internal(_) => unreachable!(),
            };
            for &(_, qi) in &pending[i..end] {
                let q = &queries[qi];
                let s = &mut scratches[qi];
                let use_soa = scheme.supports_par_plan() && q.plan.is_some();
                let block = if use_soa { tree.leaf_block(nid, entries.len()) } else { None };
                if let Err(e) = eval_leaf_entries(
                    q,
                    scheme,
                    raws,
                    tree.reps(),
                    entries,
                    block,
                    &mut s.results,
                    &mut s.dist,
                    &s.hull,
                    &mut tallies[qi],
                    tree.lb_slack(),
                ) {
                    note_err(&mut first_err, qi, e);
                    done[qi] = true;
                    s.nodes.clear();
                }
            }
            i = end;
        }
    }

    if let Some((_, e)) = first_err {
        return Err(e);
    }
    let mut out = Vec::with_capacity(queries.len());
    for (qi, tally) in tallies.into_iter().enumerate() {
        let (mut retrieved, mut distances) = (Vec::with_capacity(k), Vec::with_capacity(k));
        scratches[qi].results.drain_into(&mut retrieved, &mut distances);
        out.push(SearchStats {
            retrieved,
            distances,
            measured: tally.finish_knn(),
            total: tree.reps().len(),
        });
    }
    Ok(out)
}
