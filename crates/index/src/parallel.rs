//! Parallel ingest and parallel multi-query k-NN over one [`DbchTree`].
//!
//! Two hot paths of the paper's protocol parallelise cleanly:
//!
//! * **Ingest** — reducing the raw series is embarrassingly parallel and
//!   dominates build time (APLA-family reductions are `O(N n²)`), so
//!   [`ingest_parallel`] fans the reduction out over the work-stealing
//!   engine and then builds the tree *sequentially*: DBCH insertion is
//!   order-dependent, and keeping it sequential makes the parallel tree
//!   structurally identical to the sequential one.
//! * **Multi-query k-NN** — each search only reads the tree, so
//!   [`knn_batch`] chunks queries into contiguous blocks and fans the
//!   blocks out across workers; each block runs through the query-major
//!   co-scheduled driver ([`crate::batched`]), which evaluates every
//!   query that reaches a leaf in the same round back-to-back while the
//!   leaf's SoA block is cache-hot. Every worker owns the block driver's
//!   scratch (per-query [`crate::knn::KnnScratch`]es, pending pairs)
//!   created once and reused for all its blocks, and batch-wide counters
//!   aggregate lock-free over atomics while the searches run.
//!
//! Both paths return **bit-for-bit** the sequential results for any
//! thread count: output order is input order, scratch reuse does not
//! perturb distances, and errors surface first-by-input-order (see
//! `sapla-parallel`).

use std::sync::atomic::{AtomicUsize, Ordering};

use sapla_baselines::{reduce_batch_parallel, ReduceScratch, Reducer};
use sapla_core::{Result, TimeSeries};
use sapla_parallel::par_try_map_init;

use crate::batched::{knn_query_major, BlockScratch, DEFAULT_QUERY_BLOCK};
use crate::dbch::{DbchTree, NodeDistRule};
use crate::knn::SearchStats;
use crate::scheme::{Query, Scheme};

/// Batch-wide search counters, aggregated lock-free (atomic adds from
/// every worker) while a [`knn_batch`] run is in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchStats {
    /// Number of queries searched.
    pub queries: usize,
    /// Exact-distance computations summed over all queries.
    pub measured: usize,
    /// Candidate pool summed over all queries (`queries × database`).
    pub candidates: usize,
}

impl BatchStats {
    /// Batch pruning power (Eq. 14 summed over the batch): fraction of
    /// all query-candidate pairs that had to be measured exactly.
    pub fn pruning_power(&self) -> f64 {
        if self.candidates == 0 {
            0.0
        } else {
            self.measured as f64 / self.candidates as f64
        }
    }
}

/// Reduce `series` in parallel and build a DBCH-tree over the results.
///
/// Reduction runs on up to `threads` work-stealing workers (`0` = the
/// hardware count); the insertion loop itself stays sequential so the
/// tree is structurally identical to
/// [`DbchTree::build_with_rule`] over the same inputs — searches return
/// bit-for-bit the same answers regardless of `threads`.
///
/// # Errors
///
/// Propagates the earliest (by input order) reduction failure, and any
/// distance failure from tree construction.
#[allow(clippy::too_many_arguments)] // mirrors DbchTree::build_with_rule + threads
pub fn ingest_parallel(
    scheme: &dyn Scheme,
    reducer: &dyn Reducer,
    series: &[TimeSeries],
    m: usize,
    min_fill: usize,
    max_fill: usize,
    rule: NodeDistRule,
    threads: usize,
) -> Result<DbchTree> {
    let _span = sapla_obs::span!("index.ingest");
    let reps = reduce_batch_parallel(reducer, series, m, threads)?;
    DbchTree::build_with_rule(scheme, reps, min_fill, max_fill, rule)
}

/// Prepare many queries in parallel (reduction dominates `Query::new`).
/// Each worker owns one [`ReduceScratch`] reused across its queries.
/// Output order is input order; the first failure by input order wins.
///
/// # Errors
///
/// Propagates the earliest (by input order) reduction failure.
pub fn prepare_queries(
    raws: &[TimeSeries],
    reducer: &dyn Reducer,
    m: usize,
    threads: usize,
) -> Result<Vec<Query>> {
    par_try_map_init(raws, threads, ReduceScratch::new, |scratch, _, raw| {
        Query::with_scratch(raw, reducer, m, scratch)
    })
}

/// Answer many k-NN queries against one tree on up to `threads`
/// work-stealing workers (`0` = the hardware count), with the default
/// query-major block size ([`DEFAULT_QUERY_BLOCK`]).
///
/// Per-query results come back in query order and are **bit-for-bit**
/// what a sequential [`DbchTree::knn`] loop returns — searches are
/// read-only, per-worker scratch reuse does not perturb distances, and
/// the query-major co-scheduling only reorders *which query runs next*,
/// never a query's own operation sequence (see [`crate::batched`]). The
/// returned [`BatchStats`] is aggregated lock-free while the batch runs
/// and always equals the sum over the per-query stats.
///
/// # Errors
///
/// Propagates the earliest (by query order) search failure.
pub fn knn_batch(
    tree: &DbchTree,
    queries: &[Query],
    k: usize,
    scheme: &dyn Scheme,
    raws: &[TimeSeries],
    threads: usize,
) -> Result<(Vec<SearchStats>, BatchStats)> {
    knn_batch_with_block(tree, queries, k, scheme, raws, threads, DEFAULT_QUERY_BLOCK)
}

/// [`knn_batch`] with an explicit query-major block size: queries are
/// chunked into contiguous blocks of `query_block` (≥ 1), each block is
/// answered by [`crate::batched`]'s round-based co-scheduled driver on
/// one worker, and blocks fan out over the work-stealing engine.
/// `query_block = 1` degenerates to query-at-a-time; results are
/// bit-identical at every block size and thread count (the perf harness
/// sweeps 1/4/16).
///
/// # Errors
///
/// Propagates the earliest (by query order) search failure.
#[allow(clippy::too_many_arguments)] // knn_batch + the block-size knob
pub fn knn_batch_with_block(
    tree: &DbchTree,
    queries: &[Query],
    k: usize,
    scheme: &dyn Scheme,
    raws: &[TimeSeries],
    threads: usize,
    query_block: usize,
) -> Result<(Vec<SearchStats>, BatchStats)> {
    let _span = sapla_obs::span!("index.knn_batch");
    let measured = AtomicUsize::new(0);
    let chunks: Vec<&[Query]> = queries.chunks(query_block.max(1)).collect();
    let per_chunk = par_try_map_init(&chunks, threads, BlockScratch::new, |scratch, _, &chunk| {
        let stats = knn_query_major(tree, chunk, k, scheme, raws, scratch)?;
        measured.fetch_add(stats.iter().map(|s| s.measured).sum(), Ordering::Relaxed);
        Ok(stats)
    })?;
    let per_query: Vec<SearchStats> = per_chunk.into_iter().flatten().collect();
    let batch = BatchStats {
        queries: queries.len(),
        measured: measured.into_inner(),
        candidates: queries.len() * tree.len(),
    };
    Ok((per_query, batch))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::KnnScratch;
    use crate::scheme::scheme_for;
    use sapla_baselines::SaplaReducer;
    use sapla_core::Error;

    fn dataset(n_series: usize, len: usize) -> Vec<TimeSeries> {
        (0..n_series)
            .map(|i| {
                TimeSeries::new(
                    (0..len)
                        .map(|t| {
                            ((t + i * 11) as f64 * 0.17).sin() * (1.0 + (i % 5) as f64 * 0.2)
                                + (i as f64 * 0.61).sin() * 0.5
                        })
                        .collect(),
                )
                .unwrap()
                .znormalized()
            })
            .collect()
    }

    #[test]
    fn parallel_ingest_is_bit_identical_to_sequential_build() {
        let raws = dataset(40, 64);
        let reducer = SaplaReducer::new();
        let scheme = scheme_for("SAPLA").unwrap();
        let seq_reps: Vec<_> = raws.iter().map(|s| reducer.reduce(s, 12).unwrap()).collect();
        let seq_tree =
            DbchTree::build_with_rule(scheme.as_ref(), seq_reps, 2, 5, NodeDistRule::Paper)
                .unwrap();
        for threads in [1usize, 2, 4, 7] {
            let par_tree = ingest_parallel(
                scheme.as_ref(),
                &reducer,
                &raws,
                12,
                2,
                5,
                NodeDistRule::Paper,
                threads,
            )
            .unwrap();
            assert_eq!(par_tree.shape(), seq_tree.shape(), "threads = {threads}");
            for qi in [0usize, 7, 19] {
                let q = Query::new(&raws[qi], &reducer, 12).unwrap();
                let a = seq_tree.knn(&q, 5, scheme.as_ref(), &raws).unwrap();
                let b = par_tree.knn(&q, 5, scheme.as_ref(), &raws).unwrap();
                assert_eq!(a, b, "threads = {threads}, query {qi}");
            }
        }
    }

    #[test]
    fn knn_batch_matches_sequential_loop_bit_for_bit() {
        let raws = dataset(50, 64);
        let reducer = SaplaReducer::new();
        let scheme = scheme_for("SAPLA").unwrap();
        let tree =
            ingest_parallel(scheme.as_ref(), &reducer, &raws, 12, 2, 5, NodeDistRule::Paper, 4)
                .unwrap();
        let queries = prepare_queries(&raws[..12], &reducer, 12, 4).unwrap();
        let sequential: Vec<SearchStats> =
            queries.iter().map(|q| tree.knn(q, 5, scheme.as_ref(), &raws).unwrap()).collect();
        for threads in [1usize, 2, 4, 7] {
            let (per_query, batch) =
                knn_batch(&tree, &queries, 5, scheme.as_ref(), &raws, threads).unwrap();
            assert_eq!(per_query, sequential, "threads = {threads}");
            // Exact-distance bitwise agreement, not just approximate.
            for (p, s) in per_query.iter().zip(&sequential) {
                for (pd, sd) in p.distances.iter().zip(&s.distances) {
                    assert_eq!(pd.to_bits(), sd.to_bits());
                }
            }
            assert_eq!(
                batch.measured,
                sequential.iter().map(|s| s.measured).sum::<usize>(),
                "lock-free aggregate must equal the per-query sum"
            );
            assert_eq!(batch.queries, queries.len());
            assert_eq!(batch.candidates, queries.len() * tree.len());
            assert!(batch.pruning_power() <= 1.0);
        }
    }

    #[test]
    fn query_block_size_never_changes_results() {
        let raws = dataset(60, 64);
        let reducer = SaplaReducer::new();
        let scheme = scheme_for("SAPLA").unwrap();
        let tree =
            ingest_parallel(scheme.as_ref(), &reducer, &raws, 12, 2, 5, NodeDistRule::Paper, 2)
                .unwrap();
        let queries = prepare_queries(&raws[..17], &reducer, 12, 2).unwrap();
        let sequential: Vec<SearchStats> =
            queries.iter().map(|q| tree.knn(q, 5, scheme.as_ref(), &raws).unwrap()).collect();
        for block in [1usize, 4, 16, 64] {
            for threads in [1usize, 2, 4, 7] {
                let (per_query, _) = knn_batch_with_block(
                    &tree,
                    &queries,
                    5,
                    scheme.as_ref(),
                    &raws,
                    threads,
                    block,
                )
                .unwrap();
                assert_eq!(per_query, sequential, "block = {block}, threads = {threads}");
                for (p, s) in per_query.iter().zip(&sequential) {
                    for (pd, sd) in p.distances.iter().zip(&s.distances) {
                        assert_eq!(pd.to_bits(), sd.to_bits(), "block = {block}");
                    }
                }
            }
        }
    }

    #[test]
    fn scratch_reuse_matches_fresh_scratch() {
        let raws = dataset(30, 64);
        let reducer = SaplaReducer::new();
        let scheme = scheme_for("SAPLA").unwrap();
        let tree =
            ingest_parallel(scheme.as_ref(), &reducer, &raws, 12, 2, 5, NodeDistRule::Paper, 0)
                .unwrap();
        let mut reused = KnnScratch::new();
        for qi in 0..10 {
            let q = Query::new(&raws[qi], &reducer, 12).unwrap();
            let fresh = tree.knn(&q, 4, scheme.as_ref(), &raws).unwrap();
            let warm = tree.knn_with_scratch(&q, 4, scheme.as_ref(), &raws, &mut reused).unwrap();
            assert_eq!(fresh, warm, "query {qi}");
        }
    }

    #[test]
    fn batch_errors_surface_first_by_query_order() {
        let raws = dataset(20, 64);
        let reducer = SaplaReducer::new();
        let scheme = scheme_for("SAPLA").unwrap();
        let tree =
            ingest_parallel(scheme.as_ref(), &reducer, &raws, 12, 2, 5, NodeDistRule::Paper, 2)
                .unwrap();
        // Queries over a different series length fail in rep_dist with a
        // LengthMismatch carrying the query length — plant two failing
        // lengths and check the earlier query's error wins on every
        // thread count.
        let bad_a = dataset(1, 32).pop().unwrap();
        let bad_b = dataset(1, 48).pop().unwrap();
        let mut queries = prepare_queries(&raws[..8], &reducer, 12, 2).unwrap();
        queries[2] = Query::new(&bad_a, &reducer, 12).unwrap();
        queries[6] = Query::new(&bad_b, &reducer, 12).unwrap();
        for threads in [1usize, 2, 4, 7] {
            let err = knn_batch(&tree, &queries, 3, scheme.as_ref(), &raws, threads).unwrap_err();
            match err {
                Error::LengthMismatch { left, right } => {
                    assert!(
                        left.min(right) == 32,
                        "threads = {threads}: expected the index-2 query's \
                         mismatch, got {left} vs {right}"
                    );
                }
                other => panic!("unexpected error: {other:?}"),
            }
        }
    }
}
