//! Contiguous struct-of-arrays leaf blocks.
//!
//! Leaf refinement is a scan: one query against every entry of a leaf.
//! The stored [`Representation`]s are per-entry heap objects, so that
//! scan pointer-hops between allocations. A [`LeafBlock`] flattens a
//! leaf's linear-segment coefficients into three contiguous arrays
//! (`slopes[] / intercepts[] / endpoints[]`) with per-entry spans, so
//! the planned `Dist_PAR` kernel walks cache-linear memory. Both trees
//! keep one block per node, refreshed at every leaf mutation; a block
//! over any non-linear entry marks itself unavailable and refinement
//! falls back to the stored representations (identical results — the
//! SoA view feeds the same generic walker and term function).

use sapla_core::{Representation, Result};
use sapla_distance::SoaSegs;

/// One leaf's flattened segment coefficients (see module docs). Kept in
/// a per-tree `Vec<LeafBlock>` parallel to the node arena; non-leaf
/// slots simply stay empty. Rebuilds reuse the allocations, so
/// steady-state insert/remove does not churn.
#[derive(Debug, Clone, Default)]
pub(crate) struct LeafBlock {
    ok: bool,
    slopes: Vec<f64>,
    intercepts: Vec<f64>,
    endpoints: Vec<usize>,
    /// Per-entry `(first segment, segment count)` spans, aligned with
    /// the leaf's entry list.
    spans: Vec<(u32, u32)>,
}

impl LeafBlock {
    /// Rebuild the block from a leaf's entry list. Marks itself
    /// unavailable (and stops) at the first entry without a linear
    /// representation.
    pub fn rebuild(&mut self, entries: &[usize], reps: &[Representation]) {
        self.slopes.clear();
        self.intercepts.clear();
        self.endpoints.clear();
        self.spans.clear();
        self.ok = true;
        for &e in entries {
            let Some(lin) = reps[e].as_linear() else {
                self.ok = false;
                return;
            };
            // audit: cast_ok — a leaf block holds ≤ fanout records × their
            // segments, far below u32::MAX (codec caps record counts).
            let start = self.slopes.len() as u32;
            for seg in lin.segments() {
                self.slopes.push(seg.a);
                self.intercepts.push(seg.b);
                self.endpoints.push(seg.r);
            }
            // audit: cast_ok — per-record segment count, bounded as above.
            self.spans.push((start, lin.num_segments() as u32));
        }
    }

    /// Mark the block unusable (e.g. the node was detached or turned
    /// internal) without dropping its allocations.
    pub fn invalidate(&mut self) {
        self.ok = false;
    }

    /// Whether the block mirrors the leaf and every entry is linear.
    pub fn is_ok(&self) -> bool {
        self.ok
    }

    /// Number of entries the block covers (leaf-list order).
    pub fn num_entries(&self) -> usize {
        self.spans.len()
    }

    /// SoA view of the block's `j`-th entry (leaf-list order).
    ///
    /// # Errors
    ///
    /// Propagates the [`SoaSegs::new`] shape check (which cannot fire on
    /// a block built by [`LeafBlock::rebuild`], but the error path keeps
    /// the no-panic contract).
    pub fn entry(&self, j: usize) -> Result<SoaSegs<'_>> {
        let (start, len) = self.spans[j];
        let (s, e) = (start as usize, start as usize + len as usize);
        SoaSegs::new(&self.slopes[s..e], &self.intercepts[s..e], &self.endpoints[s..e])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapla_core::{ConstantSegment, LinearSegment, PiecewiseConstant, PiecewiseLinear};

    fn lin(coeffs: &[(f64, f64, usize)]) -> Representation {
        Representation::Linear(
            PiecewiseLinear::new(
                coeffs.iter().map(|&(a, b, r)| LinearSegment { a, b, r }).collect(),
            )
            .unwrap(),
        )
    }

    #[test]
    fn rebuild_flattens_and_views_round_trip() {
        let reps = vec![
            lin(&[(1.0, 0.0, 3), (0.0, 4.0, 7)]),
            lin(&[(0.5, 1.0, 7)]),
            lin(&[(-1.0, 2.0, 2), (2.0, 0.0, 5), (0.0, 1.0, 7)]),
        ];
        let mut block = LeafBlock::default();
        block.rebuild(&[2, 0], &reps);
        assert!(block.is_ok());
        let v0 = block.entry(0).unwrap();
        assert_eq!(v0.num_segments(), 3);
        assert_eq!(v0.series_len(), 8);
        let v1 = block.entry(1).unwrap();
        assert_eq!(v1.num_segments(), 2);
        assert_eq!(v1.series_len(), 8);
    }

    #[test]
    fn non_linear_entry_disables_block() {
        let reps = vec![
            lin(&[(1.0, 0.0, 7)]),
            Representation::Constant(
                PiecewiseConstant::new(vec![ConstantSegment { v: 1.0, r: 7 }]).unwrap(),
            ),
        ];
        let mut block = LeafBlock::default();
        block.rebuild(&[0, 1], &reps);
        assert!(!block.is_ok());
        block.rebuild(&[0], &reps);
        assert!(block.is_ok());
        block.invalidate();
        assert!(!block.is_ok());
    }
}
