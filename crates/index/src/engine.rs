//! [`Engine`] — reusable kNN / range orchestration over a (possibly
//! sharded) index, shared by the CLI, the bench harness, and
//! `sapla-serve`.
//!
//! The engine owns everything a query needs: the indexing [`Scheme`],
//! the [`Reducer`] that turns raw series into queries, the raw series
//! (for exact refinement), and one or more index shards. Callers hand
//! it raw query series (or pre-built [`Query`]s) and get back the same
//! `(Vec<SearchStats>, BatchStats)` that [`knn_batch`] produces.
//!
//! # Sharding and determinism
//!
//! Entries are partitioned round-robin over `shards` independent trees:
//! global id `g` lives in shard `g % shards` at local id `g / shards`.
//! A kNN scatter-gathers: every `(query block, shard)` pair runs top-`k`
//! independently (fanned over the work-stealing engine, each block
//! answered by the query-major co-scheduled driver of [`crate::batched`]
//! with per-worker warm scratches), and per-query results merge by
//! `(distance, global id)` — a strict total order, so the merge is
//! deterministic at every thread count.
//!
//! With `shards == 1` the engine is **bit-identical** to the
//! single-tree [`knn_batch`] path (pinned by proptest). With more
//! shards the answer can differ from a single tree — the paper's
//! node-distance rule is conditional, not a sound lower bound, so
//! *which* candidates a tree refines depends on tree structure. The
//! shard count is therefore part of the index configuration, not a
//! tuning knob to vary between runs (see DESIGN.md, "Service
//! architecture").

use std::sync::Arc;

use sapla_baselines::{reduce_batch_parallel, Reducer};
use sapla_core::codec::{decode_collection, encode_collection};
use sapla_core::{Bytes, Error, Representation, Result, TimeSeries};
use sapla_parallel::par_try_map_init;

use crate::batched::{knn_query_major, BlockScratch};
use crate::dbch::{DbchTree, NodeDistRule};
use crate::knn::SearchStats;
use crate::parallel::{knn_batch, prepare_queries, BatchStats};
use crate::rtree::RTree;
use crate::scheme::{scheme_for, Query, Scheme};

/// Which index structure backs each shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TreeKind {
    /// The paper's DBCH-tree (hull bounds under `Dist_PAR`).
    #[default]
    Dbch,
    /// The R-tree baseline over per-method feature MBRs.
    Rtree,
}

impl TreeKind {
    /// Parse a CLI / wire name (`"dbch"` or `"rtree"`).
    ///
    /// # Errors
    ///
    /// [`Error::UnknownMethod`] for anything else.
    pub fn parse(name: &str) -> Result<TreeKind> {
        match name {
            "dbch" => Ok(TreeKind::Dbch),
            "rtree" => Ok(TreeKind::Rtree),
            other => Err(Error::UnknownMethod { name: format!("tree {other}") }),
        }
    }

    /// The name [`TreeKind::parse`] accepts.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TreeKind::Dbch => "dbch",
            TreeKind::Rtree => "rtree",
        }
    }
}

/// Structural configuration of an [`Engine`]. Everything here shapes
/// the index itself (and thus the answers, see the module docs on
/// sharding) — per-call knobs like thread counts stay out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Index structure per shard.
    pub tree: TreeKind,
    /// Coefficient budget `M` for reduction.
    pub m: usize,
    /// Minimum node fill.
    pub min_fill: usize,
    /// Maximum node fill.
    pub max_fill: usize,
    /// Number of index shards (`0` is treated as `1`).
    pub shards: usize,
    /// DBCH node-distance rule (ignored by the R-tree).
    pub rule: NodeDistRule,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            tree: TreeKind::Dbch,
            m: 12,
            min_fill: 2,
            max_fill: 5,
            shards: 1,
            rule: NodeDistRule::Paper,
        }
    }
}

pub(crate) enum ShardIndex {
    Dbch(DbchTree),
    Rtree(RTree),
}

impl ShardIndex {
    /// The shard's tree as the query-major driver's trait object.
    fn as_batch_tree(&self) -> &dyn crate::batched::BatchTree {
        match self {
            ShardIndex::Dbch(t) => t,
            ShardIndex::Rtree(t) => t,
        }
    }

    fn range(
        &self,
        q: &Query,
        epsilon: f64,
        scheme: &dyn Scheme,
        raws: &[TimeSeries],
    ) -> Result<SearchStats> {
        match self {
            ShardIndex::Dbch(t) => t.range(q, epsilon, scheme, raws),
            ShardIndex::Rtree(t) => t.range(q, epsilon, scheme, raws),
        }
    }

    pub(crate) fn reps(&self) -> &[Representation] {
        match self {
            ShardIndex::Dbch(t) => t.reps(),
            ShardIndex::Rtree(t) => t.reps(),
        }
    }
}

pub(crate) struct Shard {
    pub(crate) index: ShardIndex,
    /// Raw series in local-id order (exact refinement reads these).
    pub(crate) raws: Vec<TimeSeries>,
}

/// A self-contained, shareable similarity-search engine (see module
/// docs). `Engine` is `Send + Sync`; long-lived services hold it in an
/// `Arc` and swap the `Arc` on reload so in-flight queries finish
/// against the index they started on.
pub struct Engine {
    pub(crate) cfg: EngineConfig,
    pub(crate) scheme: Arc<dyn Scheme>,
    pub(crate) reducer: Arc<dyn Reducer>,
    pub(crate) shards: Vec<Shard>,
    pub(crate) total: usize,
    /// Additive `Dist_LB` slack the strict-invariants audit must allow:
    /// `0.0` for engines built from raw series, the maximum per-record
    /// quantization perturbation for engines loaded from a quantized
    /// snapshot (see `crate::snapshot`). Survives `reload_from_snapshot`
    /// because the reps stay perturbed relative to the raw series even
    /// after a rebuild.
    pub(crate) lb_slack: f64,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("cfg", &self.cfg)
            .field("method", &self.reducer.name())
            .field("shards", &self.shards.len())
            .field("total", &self.total)
            .finish_non_exhaustive()
    }
}

impl Engine {
    /// Reduce `raws` (on up to `threads` workers) and build the sharded
    /// index. The scheme is derived from the reducer's method name.
    ///
    /// # Errors
    ///
    /// Propagates reduction, scheme-resolution, and tree-build failures.
    pub fn build(
        cfg: EngineConfig,
        reducer: Box<dyn Reducer>,
        raws: Vec<TimeSeries>,
        threads: usize,
    ) -> Result<Engine> {
        let _span = sapla_obs::span!("engine.build");
        let scheme: Arc<dyn Scheme> = Arc::from(scheme_for(reducer.name())?);
        let reps = reduce_batch_parallel(reducer.as_ref(), &raws, cfg.m, threads)?;
        Self::assemble(cfg, scheme, Arc::from(reducer), reps, raws, 0.0)
    }

    /// Build from already-reduced representations (the snapshot-reload
    /// path): `reps[g]` must be the reduction of `raws[g]`.
    ///
    /// # Errors
    ///
    /// [`Error::LengthMismatch`] when `reps` and `raws` disagree in
    /// length; otherwise scheme-resolution / tree-build failures.
    pub fn from_parts(
        cfg: EngineConfig,
        reducer: Box<dyn Reducer>,
        reps: Vec<Representation>,
        raws: Vec<TimeSeries>,
    ) -> Result<Engine> {
        if reps.len() != raws.len() {
            return Err(Error::LengthMismatch { left: reps.len(), right: raws.len() });
        }
        let scheme: Arc<dyn Scheme> = Arc::from(scheme_for(reducer.name())?);
        Self::assemble(cfg, scheme, Arc::from(reducer), reps, raws, 0.0)
    }

    fn assemble(
        cfg: EngineConfig,
        scheme: Arc<dyn Scheme>,
        reducer: Arc<dyn Reducer>,
        reps: Vec<Representation>,
        raws: Vec<TimeSeries>,
        lb_slack: f64,
    ) -> Result<Engine> {
        let n_shards = cfg.shards.max(1);
        let total = reps.len();
        let mut shard_reps: Vec<Vec<Representation>> = Vec::with_capacity(n_shards);
        let mut shard_raws: Vec<Vec<TimeSeries>> = Vec::with_capacity(n_shards);
        for s in 0..n_shards {
            let cap = total / n_shards + usize::from(s < total % n_shards);
            shard_reps.push(Vec::with_capacity(cap));
            shard_raws.push(Vec::with_capacity(cap));
        }
        for (g, (rep, raw)) in reps.into_iter().zip(raws).enumerate() {
            shard_reps[g % n_shards].push(rep);
            shard_raws[g % n_shards].push(raw);
        }
        let mut shards = Vec::with_capacity(n_shards);
        for (reps, raws) in shard_reps.into_iter().zip(shard_raws) {
            let index = match cfg.tree {
                TreeKind::Dbch => {
                    let mut tree = DbchTree::build_with_rule(
                        scheme.as_ref(),
                        reps,
                        cfg.min_fill,
                        cfg.max_fill,
                        cfg.rule,
                    )?;
                    // A quantized-snapshot lineage keeps its audit slack
                    // across rebuilds (the reps are still perturbed
                    // relative to the raws).
                    tree.lb_slack = lb_slack;
                    ShardIndex::Dbch(tree)
                }
                TreeKind::Rtree => ShardIndex::Rtree(RTree::build(
                    scheme.as_ref(),
                    reps,
                    cfg.min_fill,
                    cfg.max_fill,
                )?),
            };
            shards.push(Shard { index, raws });
        }
        Ok(Engine { cfg, scheme, reducer, shards, total, lb_slack })
    }

    /// Number of indexed series (over all shards).
    #[must_use]
    pub fn len(&self) -> usize {
        self.total
    }

    /// `true` iff no series are indexed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Number of index shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The engine's structural configuration.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// The reduction method name (e.g. `"SAPLA"`).
    #[must_use]
    pub fn method(&self) -> &'static str {
        self.reducer.name()
    }

    /// Reduce raw query series into [`Query`]s (parallel, warm
    /// scratches; output order is input order).
    ///
    /// # Errors
    ///
    /// Propagates the earliest (by input order) reduction failure.
    pub fn prepare(&self, raws: &[TimeSeries], threads: usize) -> Result<Vec<Query>> {
        prepare_queries(raws, self.reducer.as_ref(), self.cfg.m, threads)
    }

    /// Answer a batch of k-NN queries: chunk the queries into
    /// query-major blocks ([`crate::batched`]), scatter every
    /// `(block, shard)` pair over up to `threads` workers, gather per
    /// query by `(distance, global id)`. With one shard this returns
    /// bit-for-bit what [`knn_batch`] returns (see module docs).
    ///
    /// # Errors
    ///
    /// Propagates the earliest (by scatter order) search failure.
    pub fn knn(
        &self,
        queries: &[Query],
        k: usize,
        threads: usize,
    ) -> Result<(Vec<SearchStats>, BatchStats)> {
        let _span = sapla_obs::span!("engine.knn");
        let n_shards = self.shards.len();
        if n_shards == 1 {
            if let (Some(shard), ShardIndex::Dbch(tree)) =
                (self.shards.first(), &self.shards[0].index)
            {
                // Single DBCH shard: take the established batch path
                // directly (same results as the scatter-gather below;
                // skips the trivial merge).
                let start_ns = sapla_obs::clock::now_ns();
                let answer =
                    knn_batch(tree, queries, k, self.scheme.as_ref(), &shard.raws, threads);
                let dur = sapla_obs::clock::now_ns().saturating_sub(start_ns);
                sapla_obs::windowed!("engine.shard.knn.ns", 0, dur);
                let _ = dur;
                return answer;
            }
        }
        let block = crate::batched::DEFAULT_QUERY_BLOCK;
        let blocks: Vec<&[Query]> = queries.chunks(block).collect();
        let tasks: Vec<(usize, usize)> =
            (0..blocks.len()).flat_map(|b| (0..n_shards).map(move |s| (b, s))).collect();
        let partials =
            par_try_map_init(&tasks, threads, BlockScratch::new, |scratch, _, &(bi, si)| {
                let shard = &self.shards[si];
                let start_ns = sapla_obs::clock::now_ns();
                let stats = knn_query_major(
                    shard.index.as_batch_tree(),
                    blocks[bi],
                    k,
                    self.scheme.as_ref(),
                    &shard.raws,
                    scratch,
                )?;
                // Per-shard execution time, windowed per shard lane so
                // `OP_METRICS` can surface a slow shard's last-minute
                // percentiles next to its lifetime totals.
                let dur = sapla_obs::clock::now_ns().saturating_sub(start_ns);
                sapla_obs::windowed!("engine.shard.knn.ns", si, dur);
                let _ = dur;
                sapla_obs::lane_counter!(
                    "engine.shard.measured",
                    si,
                    stats.iter().map(|s| s.measured as u64).sum::<u64>()
                );
                sapla_obs::lane_counter!("engine.shard.queries", si, blocks[bi].len() as u64);
                Ok(stats)
            })?;
        let mut out = Vec::with_capacity(queries.len());
        let mut measured_total = 0usize;
        let mut merged: Vec<(f64, usize)> = Vec::new();
        for qi in 0..queries.len() {
            merged.clear();
            let mut measured = 0usize;
            let (bi, off) = (qi / block, qi % block);
            for si in 0..n_shards {
                let stats = &partials[bi * n_shards + si][off];
                measured += stats.measured;
                for (&d, &local) in stats.distances.iter().zip(&stats.retrieved) {
                    merged.push((d, local * n_shards + si));
                }
            }
            // (distance, global id) is a strict total order over distinct
            // entries — the merge is deterministic however shards raced.
            merged.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            merged.truncate(k);
            measured_total += measured;
            out.push(SearchStats {
                retrieved: merged.iter().map(|&(_, id)| id).collect(),
                distances: merged.iter().map(|&(d, _)| d).collect(),
                measured,
                total: self.total,
            });
        }
        let batch = BatchStats {
            queries: queries.len(),
            measured: measured_total,
            candidates: queries.len() * self.total,
        };
        Ok((out, batch))
    }

    /// ε-range search over all shards, merged by `(distance, global id)`.
    ///
    /// # Errors
    ///
    /// Propagates distance-computation failures.
    pub fn range(&self, q: &Query, epsilon: f64) -> Result<SearchStats> {
        let _span = sapla_obs::span!("engine.range");
        let n_shards = self.shards.len();
        let mut merged: Vec<(f64, usize)> = Vec::new();
        let mut measured = 0usize;
        for (si, shard) in self.shards.iter().enumerate() {
            let stats = shard.index.range(q, epsilon, self.scheme.as_ref(), &shard.raws)?;
            measured += stats.measured;
            for (&d, &local) in stats.distances.iter().zip(&stats.retrieved) {
                merged.push((d, local * n_shards + si));
            }
        }
        merged.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        Ok(SearchStats {
            retrieved: merged.iter().map(|&(_, id)| id).collect(),
            distances: merged.iter().map(|&(d, _)| d).collect(),
            measured,
            total: self.total,
        })
    }

    /// The indexed representations in global-id order (reassembled from
    /// the shards).
    #[must_use]
    pub fn reps(&self) -> Vec<Representation> {
        let n_shards = self.shards.len();
        let mut out = Vec::with_capacity(self.total);
        for g in 0..self.total {
            out.push(self.shards[g % n_shards].index.reps()[g / n_shards].clone());
        }
        out
    }

    /// Serialize the indexed representations with [`sapla_core::codec`]
    /// (the raw series are the caller's to persist — the codec stores
    /// segments, not samples).
    ///
    /// # Errors
    ///
    /// Propagates codec encoding failures ([`Error::TooManyRecords`]).
    pub fn snapshot(&self) -> Result<Bytes> {
        let _span = sapla_obs::span!("engine.snapshot");
        encode_collection(&self.reps())
    }

    /// Rebuild a fresh engine from a codec blob, reusing this engine's
    /// configuration, scheme, reducer, and raw series. The blob must
    /// describe the same membership (`len()` records) — the raws are
    /// keyed by global id. `self` is untouched, so a service can keep
    /// answering on the old engine until the new one is ready.
    ///
    /// # Errors
    ///
    /// Codec decode failures, [`Error::LengthMismatch`] on a record
    /// count change, and tree-build failures.
    pub fn reload_from_snapshot(&self, blob: &[u8]) -> Result<Engine> {
        let _span = sapla_obs::span!("engine.reload");
        let reps = decode_collection(blob)?;
        if reps.len() != self.total {
            return Err(Error::LengthMismatch { left: reps.len(), right: self.total });
        }
        let n_shards = self.shards.len();
        let mut raws = Vec::with_capacity(self.total);
        for g in 0..self.total {
            raws.push(self.shards[g % n_shards].raws[g / n_shards].clone());
        }
        Self::assemble(
            self.cfg,
            Arc::clone(&self.scheme),
            Arc::clone(&self.reducer),
            reps,
            raws,
            self.lb_slack,
        )
    }

    /// The additive `Dist_LB` slack carried by this engine's trees —
    /// `0.0` unless the engine descends from a quantized snapshot (see
    /// [`Engine::write_snapshot_file`]).
    #[must_use]
    pub fn lb_slack(&self) -> f64 {
        self.lb_slack
    }

    /// Serialize the **whole** engine — raw series, representations
    /// (exact SoA coefficient arenas, or ε-quantized ones when
    /// `quantize` is set), and every shard's fully-built tree — into
    /// the `sapla-store` arena container, in memory.
    ///
    /// Loading the image with [`Engine::from_snapshot_image`] skips
    /// reduction *and* the O(n log n) tree build: arenas are validated,
    /// reinterpreted, and adopted verbatim.
    ///
    /// # Errors
    ///
    /// [`sapla_core::Error::UnsupportedRepresentation`] when `quantize`
    /// is combined with an R-tree engine or non-linear representations;
    /// encoding failures otherwise.
    pub fn snapshot_image(&self, quantize: Option<f64>) -> Result<Vec<u8>> {
        crate::snapshot::write_image(self, quantize)
    }

    /// [`Engine::snapshot_image`] + write the image to `path`,
    /// returning the file size in bytes.
    ///
    /// # Errors
    ///
    /// Encoding failures, plus [`sapla_core::Error::Io`] on filesystem
    /// failures.
    pub fn write_snapshot_file(
        &self,
        path: &std::path::Path,
        quantize: Option<f64>,
    ) -> Result<u64> {
        let _span = sapla_obs::span!("engine.snapshot.write");
        crate::snapshot::write_file(self, path, quantize)
    }

    /// Reconstruct an engine from a snapshot image produced by
    /// [`Engine::snapshot_image`]: O(file size) validation and bulk
    /// materialization, no reduction, no insertion build.
    ///
    /// # Errors
    ///
    /// [`sapla_core::Error::CorruptIndex`] for any malformed, truncated
    /// or tampered image (never a panic); scheme/reducer resolution
    /// failures for unknown method names.
    pub fn from_snapshot_image(data: &[u8]) -> Result<Engine> {
        crate::snapshot::load_image(data)
    }

    /// Read `path` and reconstruct the engine it holds — the daemon
    /// cold-start path.
    ///
    /// # Errors
    ///
    /// [`sapla_core::Error::Io`] on filesystem failures, otherwise as
    /// [`Engine::from_snapshot_image`].
    pub fn from_snapshot_file(path: &std::path::Path) -> Result<Engine> {
        let _span = sapla_obs::span!("engine.snapshot.load");
        crate::snapshot::load_file(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::ingest_parallel;
    use sapla_baselines::SaplaReducer;

    fn dataset(n_series: usize, len: usize) -> Vec<TimeSeries> {
        (0..n_series)
            .map(|i| {
                TimeSeries::new(
                    (0..len)
                        .map(|t| {
                            ((t + i * 13) as f64 * 0.19).sin() * (1.0 + (i % 4) as f64 * 0.3)
                                + (i as f64 * 0.37).cos() * 0.4
                        })
                        .collect(),
                )
                .unwrap()
                .znormalized()
            })
            .collect()
    }

    fn engine_with(shards: usize, tree: TreeKind, raws: &[TimeSeries]) -> Engine {
        let cfg = EngineConfig { shards, tree, ..EngineConfig::default() };
        Engine::build(cfg, Box::new(SaplaReducer::new()), raws.to_vec(), 2).unwrap()
    }

    #[test]
    fn single_shard_matches_knn_batch_bit_for_bit() {
        let raws = dataset(48, 64);
        let reducer = SaplaReducer::new();
        let scheme = scheme_for("SAPLA").unwrap();
        let tree =
            ingest_parallel(scheme.as_ref(), &reducer, &raws, 12, 2, 5, NodeDistRule::Paper, 2)
                .unwrap();
        let engine = engine_with(1, TreeKind::Dbch, &raws);
        let queries = engine.prepare(&raws[..10], 2).unwrap();
        let (want, want_batch) = knn_batch(&tree, &queries, 5, scheme.as_ref(), &raws, 2).unwrap();
        for threads in [1usize, 2, 4, 7] {
            let (got, got_batch) = engine.knn(&queries, 5, threads).unwrap();
            assert_eq!(got, want, "threads = {threads}");
            for (g, w) in got.iter().zip(&want) {
                for (gd, wd) in g.distances.iter().zip(&w.distances) {
                    assert_eq!(gd.to_bits(), wd.to_bits());
                }
            }
            assert_eq!(got_batch, want_batch, "threads = {threads}");
        }
    }

    #[test]
    fn sharded_results_are_thread_count_invariant() {
        let raws = dataset(60, 64);
        for shards in [2usize, 3, 4] {
            let engine = engine_with(shards, TreeKind::Dbch, &raws);
            let queries = engine.prepare(&raws[..8], 2).unwrap();
            let (want, want_batch) = engine.knn(&queries, 4, 1).unwrap();
            for threads in [2usize, 4, 7] {
                let (got, got_batch) = engine.knn(&queries, 4, threads).unwrap();
                assert_eq!(got, want, "shards = {shards}, threads = {threads}");
                assert_eq!(got_batch, want_batch);
            }
        }
    }

    #[test]
    fn sharded_full_enumeration_matches_single_tree() {
        // With k = |database| nothing can be pruned away structurally:
        // every entry is retrieved, so shard layout must not change the
        // answer set or its (distance, id) order.
        let raws = dataset(30, 64);
        let single = engine_with(1, TreeKind::Dbch, &raws);
        let queries = single.prepare(&raws[..5], 2).unwrap();
        let (want, _) = single.knn(&queries, raws.len(), 2).unwrap();
        for shards in [2usize, 3] {
            let engine = engine_with(shards, TreeKind::Dbch, &raws);
            let (got, _) = engine.knn(&queries, raws.len(), 2).unwrap();
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.retrieved, w.retrieved, "shards = {shards}");
                for (gd, wd) in g.distances.iter().zip(&w.distances) {
                    assert_eq!(gd.to_bits(), wd.to_bits(), "shards = {shards}");
                }
            }
        }
    }

    #[test]
    fn rtree_engine_answers_whole_batches() {
        let raws = dataset(40, 64);
        let reducer = SaplaReducer::new();
        let scheme = scheme_for("SAPLA").unwrap();
        let engine = engine_with(1, TreeKind::Rtree, &raws);
        let queries = engine.prepare(&raws[..6], 2).unwrap();
        let (got, batch) = engine.knn(&queries, 3, 2).unwrap();
        assert_eq!(got.len(), 6);
        assert_eq!(batch.queries, 6);
        assert_eq!(batch.candidates, 6 * raws.len());
        // Sequential reference loop over the same tree.
        let reps: Vec<_> = raws.iter().map(|s| reducer.reduce(s, 12).unwrap()).collect();
        let tree = RTree::build(scheme.as_ref(), reps, 2, 5).unwrap();
        for (qi, q) in queries.iter().enumerate() {
            let want = tree.knn(q, 3, scheme.as_ref(), &raws).unwrap();
            assert_eq!(got[qi], want, "query {qi}");
        }
    }

    #[test]
    fn range_merge_matches_single_tree_on_one_shard() {
        let raws = dataset(35, 64);
        let engine = engine_with(1, TreeKind::Dbch, &raws);
        let queries = engine.prepare(&raws[..3], 2).unwrap();
        let reducer = SaplaReducer::new();
        let scheme = scheme_for("SAPLA").unwrap();
        let reps: Vec<_> = raws.iter().map(|s| reducer.reduce(s, 12).unwrap()).collect();
        let tree = DbchTree::build(scheme.as_ref(), reps, 2, 5).unwrap();
        for q in &queries {
            let want = tree.range(q, 4.0, scheme.as_ref(), &raws).unwrap();
            let got = engine.range(q, 4.0).unwrap();
            assert_eq!(got, want);
            assert!(!got.retrieved.is_empty(), "query itself is within epsilon");
        }
    }

    #[test]
    fn sharded_range_is_the_union_of_shard_hits() {
        let raws = dataset(40, 64);
        let single = engine_with(1, TreeKind::Dbch, &raws);
        let queries = single.prepare(&raws[..4], 2).unwrap();
        for shards in [2usize, 3] {
            let engine = engine_with(shards, TreeKind::Dbch, &raws);
            for q in &queries {
                let want = single.range(q, 5.0).unwrap();
                let got = engine.range(q, 5.0).unwrap();
                // Range is exact (every surviving candidate is measured
                // against epsilon), so the hit set is shard-invariant.
                assert_eq!(got.retrieved, want.retrieved, "shards = {shards}");
            }
        }
    }

    #[test]
    fn snapshot_reload_preserves_answers() {
        let raws = dataset(45, 64);
        for shards in [1usize, 3] {
            let engine = engine_with(shards, TreeKind::Dbch, &raws);
            let queries = engine.prepare(&raws[..6], 2).unwrap();
            let (want, _) = engine.knn(&queries, 4, 2).unwrap();
            let blob = engine.snapshot().unwrap();
            let reloaded = engine.reload_from_snapshot(&blob).unwrap();
            assert_eq!(reloaded.len(), engine.len());
            assert_eq!(reloaded.shard_count(), engine.shard_count());
            let (got, _) = reloaded.knn(&queries, 4, 2).unwrap();
            assert_eq!(got, want, "shards = {shards}");
        }
    }

    #[test]
    fn reload_rejects_membership_changes_and_garbage() {
        let raws = dataset(20, 64);
        let engine = engine_with(2, TreeKind::Dbch, &raws);
        let smaller = engine_with(1, TreeKind::Dbch, &raws[..10]);
        let blob = smaller.snapshot().unwrap();
        assert_eq!(
            engine.reload_from_snapshot(&blob).unwrap_err(),
            Error::LengthMismatch { left: 10, right: 20 }
        );
        assert!(engine.reload_from_snapshot(b"not a snapshot").is_err());
    }

    #[test]
    fn snapshot_image_roundtrip_is_bit_identical() {
        let raws = dataset(40, 64);
        for shards in [1usize, 3] {
            let engine = engine_with(shards, TreeKind::Dbch, &raws);
            let queries = engine.prepare(&raws[..6], 2).unwrap();
            let (want, _) = engine.knn(&queries, 4, 2).unwrap();
            let image = engine.snapshot_image(None).unwrap();
            let loaded = Engine::from_snapshot_image(&image).unwrap();
            assert_eq!(loaded.len(), engine.len());
            assert_eq!(loaded.shard_count(), engine.shard_count());
            assert_eq!(loaded.method(), engine.method());
            assert_eq!(loaded.config(), engine.config());
            assert_eq!(loaded.lb_slack(), 0.0);
            let (got, _) = loaded.knn(&queries, 4, 2).unwrap();
            // Includes `measured`: the loaded tree replays the exact
            // same traversal, not just the same answers.
            assert_eq!(got, want, "shards = {shards}");
            for (g, w) in got.iter().zip(&want) {
                for (gd, wd) in g.distances.iter().zip(&w.distances) {
                    assert_eq!(gd.to_bits(), wd.to_bits(), "shards = {shards}");
                }
            }
        }
    }

    #[test]
    fn rtree_snapshot_roundtrip_preserves_answers() {
        let raws = dataset(36, 64);
        let engine = engine_with(2, TreeKind::Rtree, &raws);
        let queries = engine.prepare(&raws[..5], 2).unwrap();
        let (want, _) = engine.knn(&queries, 3, 2).unwrap();
        let loaded = Engine::from_snapshot_image(&engine.snapshot_image(None).unwrap()).unwrap();
        let (got, _) = loaded.knn(&queries, 3, 2).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn constant_rep_snapshot_takes_the_blob_path() {
        // PAA produces Constant representations — no SoA arenas, the
        // hardened codec blob carries the collection instead.
        let raws = dataset(24, 64);
        let cfg = EngineConfig { shards: 2, ..EngineConfig::default() };
        let engine = Engine::build(cfg, Box::new(sapla_baselines::Paa), raws.clone(), 2).unwrap();
        let queries = engine.prepare(&raws[..4], 2).unwrap();
        let (want, _) = engine.knn(&queries, 3, 2).unwrap();
        let loaded = Engine::from_snapshot_image(&engine.snapshot_image(None).unwrap()).unwrap();
        assert_eq!(loaded.method(), "PAA");
        let (got, _) = loaded.knn(&queries, 3, 2).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn quantized_snapshot_loads_with_slack_and_finds_self() {
        let raws = dataset(40, 64);
        let engine = engine_with(1, TreeKind::Dbch, &raws);
        let exact = engine.snapshot_image(None).unwrap();
        let image = engine.snapshot_image(Some(1e-3)).unwrap();
        assert!(image.len() < exact.len(), "{} vs {}", image.len(), exact.len());
        let loaded = Engine::from_snapshot_image(&image).unwrap();
        assert!(loaded.lb_slack() > 0.0);
        let queries = engine.prepare(&raws[..6], 2).unwrap();
        let (got, _) = loaded.knn(&queries, 3, 2).unwrap();
        // Refinement distances are exact Euclidean over the raw series
        // (which the snapshot keeps bitwise), so every query still
        // finds itself at distance zero.
        for (qi, s) in got.iter().enumerate() {
            assert_eq!(s.retrieved[0], qi, "query {qi}");
            assert_eq!(s.distances[0], 0.0);
        }
    }

    #[test]
    fn quantize_rejects_rtree_and_bad_steps() {
        let raws = dataset(16, 64);
        let rt = engine_with(1, TreeKind::Rtree, &raws);
        assert!(rt.snapshot_image(Some(0.01)).is_err());
        let db = engine_with(1, TreeKind::Dbch, &raws);
        assert!(db.snapshot_image(Some(0.0)).is_err());
        assert!(db.snapshot_image(Some(-1.0)).is_err());
        assert!(db.snapshot_image(Some(f64::NAN)).is_err());
    }

    #[test]
    fn snapshot_file_roundtrip_via_disk() {
        let raws = dataset(20, 64);
        let engine = engine_with(2, TreeKind::Dbch, &raws);
        let path = std::env::temp_dir().join("sapla_engine_roundtrip.snap");
        let bytes = engine.write_snapshot_file(&path, None).unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), bytes);
        let loaded = Engine::from_snapshot_file(&path).unwrap();
        assert_eq!(loaded.len(), 20);
        assert_eq!(loaded.shard_count(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reload_keeps_quantized_slack() {
        // An engine descended from a quantized snapshot keeps its audit
        // slack across codec-blob reloads: the reps stay perturbed
        // relative to the raws even after the trees are rebuilt.
        let raws = dataset(24, 64);
        let engine = engine_with(1, TreeKind::Dbch, &raws);
        let loaded =
            Engine::from_snapshot_image(&engine.snapshot_image(Some(0.01)).unwrap()).unwrap();
        let blob = loaded.snapshot().unwrap();
        let re = loaded.reload_from_snapshot(&blob).unwrap();
        assert_eq!(re.lb_slack().to_bits(), loaded.lb_slack().to_bits());
    }

    #[test]
    fn tree_kind_parses_both_ways() {
        assert_eq!(TreeKind::parse("dbch").unwrap(), TreeKind::Dbch);
        assert_eq!(TreeKind::parse("rtree").unwrap(), TreeKind::Rtree);
        assert!(TreeKind::parse("btree").is_err());
        assert_eq!(TreeKind::Dbch.name(), "dbch");
        assert_eq!(TreeKind::Rtree.name(), "rtree");
    }
}
