//! Axis-aligned hyper-rectangles (the MBRs of the classic R-tree).

/// An axis-aligned minimum bounding rectangle over feature vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct HyperRect {
    /// Per-dimension lower bounds.
    pub lo: Vec<f64>,
    /// Per-dimension upper bounds.
    pub hi: Vec<f64>,
}

impl HyperRect {
    /// Degenerate rectangle around a single point.
    pub fn point(p: &[f64]) -> Self {
        HyperRect { lo: p.to_vec(), hi: p.to_vec() }
    }

    /// Number of dimensions.
    #[inline]
    pub fn dims(&self) -> usize {
        self.lo.len()
    }

    /// Grow in place to cover `p`.
    pub fn extend_point(&mut self, p: &[f64]) {
        debug_assert_eq!(p.len(), self.dims());
        for ((lo, hi), &x) in self.lo.iter_mut().zip(self.hi.iter_mut()).zip(p) {
            if x < *lo {
                *lo = x;
            }
            if x > *hi {
                *hi = x;
            }
        }
    }

    /// Grow in place to cover `other`.
    pub fn extend_rect(&mut self, other: &HyperRect) {
        debug_assert_eq!(other.dims(), self.dims());
        for (lo, &o) in self.lo.iter_mut().zip(&other.lo) {
            if o < *lo {
                *lo = o;
            }
        }
        for (hi, &o) in self.hi.iter_mut().zip(&other.hi) {
            if o > *hi {
                *hi = o;
            }
        }
    }

    /// The union of two rectangles.
    pub fn union(&self, other: &HyperRect) -> HyperRect {
        let mut out = self.clone();
        out.extend_rect(other);
        out
    }

    /// Guttman's node volume (product of extents). High-dimensional
    /// rectangles of z-normalised coefficients stay well inside `f64`
    /// range.
    pub fn area(&self) -> f64 {
        self.lo.iter().zip(&self.hi).map(|(l, h)| h - l).product()
    }

    /// Area increase caused by absorbing `other` (the branch-picking
    /// criterion of the classic R-tree).
    pub fn enlargement(&self, other: &HyperRect) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Squared Euclidean distance from a point to the rectangle
    /// (zero inside).
    pub fn min_sq_dist_point(&self, p: &[f64]) -> f64 {
        debug_assert_eq!(p.len(), self.dims());
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(p)
            .map(|((&l, &h), &x)| {
                let d = if x < l {
                    l - x
                } else if x > h {
                    x - h
                } else {
                    0.0
                };
                d * d
            })
            .sum()
    }

    /// Per-dimension interval `[lo, hi]`.
    #[inline]
    pub fn dim(&self, i: usize) -> (f64, f64) {
        (self.lo[i], self.hi[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_rect_has_zero_area() {
        let r = HyperRect::point(&[1.0, 2.0]);
        assert_eq!(r.area(), 0.0);
        assert_eq!(r.dims(), 2);
    }

    #[test]
    fn union_and_enlargement() {
        let a = HyperRect { lo: vec![0.0, 0.0], hi: vec![1.0, 1.0] };
        let b = HyperRect { lo: vec![2.0, 0.0], hi: vec![3.0, 2.0] };
        let u = a.union(&b);
        assert_eq!(u.lo, vec![0.0, 0.0]);
        assert_eq!(u.hi, vec![3.0, 2.0]);
        assert_eq!(u.area(), 6.0);
        assert_eq!(a.enlargement(&b), 5.0);
    }

    #[test]
    fn extend_point_grows_minimally() {
        let mut r = HyperRect::point(&[0.0, 0.0]);
        r.extend_point(&[-1.0, 2.0]);
        assert_eq!(r.lo, vec![-1.0, 0.0]);
        assert_eq!(r.hi, vec![0.0, 2.0]);
    }

    #[test]
    fn point_distance() {
        let r = HyperRect { lo: vec![0.0, 0.0], hi: vec![2.0, 2.0] };
        assert_eq!(r.min_sq_dist_point(&[1.0, 1.0]), 0.0);
        assert_eq!(r.min_sq_dist_point(&[3.0, 1.0]), 1.0);
        assert_eq!(r.min_sq_dist_point(&[3.0, 4.0]), 5.0);
    }
}
