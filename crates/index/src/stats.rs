//! Tree-shape statistics (Figs. 15 and 16 of the paper).

/// Structural statistics of an index tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TreeShape {
    /// Number of internal (non-leaf) nodes.
    pub internal_nodes: usize,
    /// Number of leaf nodes.
    pub leaf_nodes: usize,
    /// Total entries stored in leaves.
    pub entries: usize,
    /// Height of the tree (a lone leaf root has height 1).
    pub height: usize,
}

impl TreeShape {
    /// Total node count.
    pub fn total_nodes(&self) -> usize {
        self.internal_nodes + self.leaf_nodes
    }

    /// Mean number of entries per leaf.
    pub fn avg_leaf_fill(&self) -> f64 {
        if self.leaf_nodes == 0 {
            0.0
        } else {
            self.entries as f64 / self.leaf_nodes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let s = TreeShape { internal_nodes: 5, leaf_nodes: 20, entries: 80, height: 3 };
        assert_eq!(s.total_nodes(), 25);
        assert!((s.avg_leaf_fill() - 4.0).abs() < 1e-12);
        assert_eq!(TreeShape::default().avg_leaf_fill(), 0.0);
    }
}
