//! Cross-checks the `index.knn.*` observability counters against the
//! search invariants they are supposed to witness (satellite of the
//! sapla-obs PR): every candidate a leaf offers is either pruned by the
//! representation distance or refined exactly, and a k-NN search must
//! refine at least k candidates to fill its result heap.
//!
//! One `#[test]` function on purpose: the obs registry is process-global
//! and the default test harness runs tests concurrently, so a single
//! test owns the whole reset/capture window.

use sapla_baselines::{Reducer, SaplaReducer};
use sapla_core::TimeSeries;
use sapla_data::{catalogue, Protocol};
use sapla_index::{scheme_for, DbchTree, Query, RTree};
use sapla_obs::Snapshot;

fn counter(snap: &Snapshot, name: &str) -> u64 {
    snap.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v).unwrap_or_else(|| {
        panic!("counter {name:?} not in snapshot: {:?}", snap.counters);
    })
}

fn dataset() -> Vec<TimeSeries> {
    let spec = &catalogue()[0];
    let protocol = Protocol { series_len: 128, series_per_dataset: 40, queries_per_dataset: 1 };
    spec.load(&protocol).series
}

#[test]
fn knn_counters_obey_the_search_invariants() {
    if !sapla_obs::enabled() {
        return; // nothing to check in an uninstrumented build
    }
    let raws = dataset();
    let reducer = SaplaReducer::new();
    let scheme = scheme_for("SAPLA").unwrap();
    let m = 12;
    let k = 5;
    let queries = 3;
    let reps: Vec<_> = raws.iter().map(|s| reducer.reduce(s, m).unwrap()).collect();

    // --- DBCH-tree ---
    let tree = DbchTree::build(scheme.as_ref(), reps.clone(), 2, 5).unwrap();
    sapla_obs::reset();
    let mut measured_total = 0usize;
    for qi in 0..queries {
        let q = Query::new(&raws[qi], &reducer, m).unwrap();
        let stats = tree.knn(&q, k, scheme.as_ref(), &raws).unwrap();
        assert_eq!(stats.retrieved.len(), k);
        measured_total += stats.measured;
    }
    let snap = Snapshot::capture();
    assert_eq!(counter(&snap, "index.knn.queries"), queries as u64);
    let considered = counter(&snap, "index.knn.entries_considered");
    let pruned = counter(&snap, "index.knn.entries_pruned");
    let refined = counter(&snap, "index.knn.refined");
    assert_eq!(
        considered,
        pruned + refined,
        "dbch: every considered candidate is either pruned or refined"
    );
    assert_eq!(refined, measured_total as u64, "dbch: counter agrees with SearchStats.measured");
    assert!(refined >= (queries * k) as u64, "dbch: each query refines at least k candidates");
    assert!(counter(&snap, "index.knn.nodes_visited") >= queries as u64, "root visited per query");

    // --- R*-tree baseline, same invariants ---
    let tree = RTree::build(scheme.as_ref(), reps, 2, 5).unwrap();
    sapla_obs::reset();
    let mut measured_total = 0usize;
    for qi in 0..queries {
        let q = Query::new(&raws[qi], &reducer, m).unwrap();
        let stats = tree.knn(&q, k, scheme.as_ref(), &raws).unwrap();
        assert_eq!(stats.retrieved.len(), k);
        measured_total += stats.measured;
    }
    let snap = Snapshot::capture();
    assert_eq!(counter(&snap, "index.knn.queries"), queries as u64);
    let considered = counter(&snap, "index.knn.entries_considered");
    let pruned = counter(&snap, "index.knn.entries_pruned");
    let refined = counter(&snap, "index.knn.refined");
    assert_eq!(
        considered,
        pruned + refined,
        "rtree: every considered candidate is either pruned or refined"
    );
    assert_eq!(refined, measured_total as u64, "rtree: counter agrees with SearchStats.measured");
    assert!(refined >= (queries * k) as u64, "rtree: each query refines at least k candidates");
}
