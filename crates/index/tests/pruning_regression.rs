//! Regression for the `entries_pruned == 0` / `nodes_pruned == 0` profile
//! of `BENCH_PR4.json`: on a database big and clustered enough that the
//! k-th-best threshold must bite, both trees have to *demonstrably* prune
//! — fewer exact refinements than the database size, and (in an
//! instrumented build) non-zero entry and node prune counters. Before
//! the threshold-driven `rep_dist_pruned` filter and the break-drain
//! node accounting, the counters stayed zero even though the searches
//! were doing the work.
//!
//! One `#[test]` function on purpose: the obs registry is process-global
//! and the default test harness runs tests concurrently, so a single
//! test owns the whole reset/capture window.

use sapla_baselines::{Reducer, SaplaReducer};
use sapla_core::TimeSeries;
use sapla_data::{catalogue, Protocol};
use sapla_index::{scheme_for, DbchTree, Query, RTree};
use sapla_obs::Snapshot;

fn counter(snap: &Snapshot, name: &str) -> u64 {
    snap.counters.iter().find(|(n, _)| n == name).map_or(0, |&(_, v)| v)
}

/// Two well-separated families: 60 smooth catalogue series and 60
/// flattened + shifted variants. The second cluster is far from any
/// first-cluster query, so its leaves and entries are prunable.
fn clustered_dataset() -> Vec<TimeSeries> {
    let spec = &catalogue()[0];
    let protocol = Protocol { series_len: 128, series_per_dataset: 60, queries_per_dataset: 1 };
    let mut raws = spec.load(&protocol).series;
    let shifted: Vec<TimeSeries> = raws
        .iter()
        .map(|s| {
            TimeSeries::new(s.values().iter().map(|v| v * 0.15 + 6.0).collect())
                .unwrap()
                .znormalized()
        })
        .collect();
    raws.extend(shifted);
    raws
}

#[test]
fn both_trees_provably_prune_on_clustered_data() {
    let raws = clustered_dataset();
    assert_eq!(raws.len(), 120);
    let reducer = SaplaReducer::new();
    let scheme = scheme_for("SAPLA").unwrap();
    let m = 12;
    let k = 3;
    let reps: Vec<_> = raws.iter().map(|s| reducer.reduce(s, m).unwrap()).collect();
    let q = Query::new(&raws[5], &reducer, m).unwrap();

    let dbch = DbchTree::build(scheme.as_ref(), reps.clone(), 2, 5).unwrap();
    sapla_obs::reset();
    let stats = dbch.knn(&q, k, scheme.as_ref(), &raws).unwrap();
    assert_eq!(stats.retrieved.len(), k);
    assert!(
        stats.measured < raws.len(),
        "dbch measured the whole database: {} of {}",
        stats.measured,
        raws.len()
    );
    if sapla_obs::enabled() {
        let snap = Snapshot::capture();
        assert!(counter(&snap, "index.knn.entries_pruned") > 0, "dbch pruned no entries");
        assert!(counter(&snap, "index.knn.nodes_pruned") > 0, "dbch pruned no nodes");
    }

    let rtree = RTree::build(scheme.as_ref(), reps, 2, 5).unwrap();
    sapla_obs::reset();
    let stats = rtree.knn(&q, k, scheme.as_ref(), &raws).unwrap();
    assert_eq!(stats.retrieved.len(), k);
    assert!(
        stats.measured < raws.len(),
        "rtree measured the whole database: {} of {}",
        stats.measured,
        raws.len()
    );
    if sapla_obs::enabled() {
        let snap = Snapshot::capture();
        assert!(counter(&snap, "index.knn.entries_pruned") > 0, "rtree pruned no entries");
        assert!(counter(&snap, "index.knn.nodes_pruned") > 0, "rtree pruned no nodes");
    }
}
