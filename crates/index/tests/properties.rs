//! Property-based tests over the index structures: GEMINI exactness for
//! valid bounds, structural invariants, and build/insert equivalence.

use proptest::prelude::*;
use sapla_baselines::{reduce_batch, reduce_batch_parallel, Paa, Pla, Reducer, SaplaReducer};
use sapla_core::{Representation, TimeSeries};
use sapla_index::scheme::AdaptiveLinearScheme;
use sapla_index::{
    filtered_scan_knn, ingest_parallel, knn_batch, linear_scan_knn, linear_scan_range,
    prepare_queries, scheme_for, DbchTree, NodeDistRule, Query, RTree, Scheme,
};

/// Random small database of regime-style series.
fn db_strategy(n_series: std::ops::Range<usize>) -> impl Strategy<Value = Vec<TimeSeries>> {
    (
        n_series,
        proptest::collection::vec((-3.0f64..3.0, -0.2f64..0.2, 0.0f64..std::f64::consts::TAU), 40),
    )
        .prop_map(|(count, params)| {
            (0..count)
                .map(|i| {
                    let (lvl, slope, phase) = params[i % params.len()];
                    TimeSeries::new(
                        (0..48)
                            .map(|t| {
                                let x = t as f64;
                                lvl + slope * x + ((x * 0.4) + phase + i as f64).sin()
                            })
                            .collect(),
                    )
                    .unwrap()
                    .znormalized()
                })
                .collect()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// With PAA's unconditional bounds, the R-tree k-NN equals the linear
    /// scan for every k (GEMINI's no-false-dismissal guarantee).
    #[test]
    fn rtree_paa_knn_is_exact(raws in db_strategy(8..30), k in 1usize..6) {
        let scheme = scheme_for("PAA").unwrap();
        let reps: Vec<Representation> =
            raws.iter().map(|s| Paa.reduce(s, 8).unwrap()).collect();
        let tree = RTree::build(scheme.as_ref(), reps, 2, 5).unwrap();
        let q = Query::new(&raws[0], &Paa, 8).unwrap();
        let got = tree.knn(&q, k, scheme.as_ref(), &raws).unwrap();
        let want = linear_scan_knn(&raws[0], &raws, k).unwrap();
        prop_assert_eq!(got.retrieved, want.retrieved);
    }

    /// Same guarantee for PLA, through range queries.
    #[test]
    fn rtree_pla_range_is_exact(raws in db_strategy(8..30), eps in 0.5f64..15.0) {
        let scheme = scheme_for("PLA").unwrap();
        let reps: Vec<Representation> =
            raws.iter().map(|s| Pla.reduce(s, 8).unwrap()).collect();
        let tree = RTree::build(scheme.as_ref(), reps, 2, 5).unwrap();
        let q = Query::new(&raws[0], &Pla, 8).unwrap();
        let got = tree.range(&q, eps, scheme.as_ref(), &raws).unwrap();
        let want = linear_scan_range(&raws[0], &raws, eps).unwrap();
        prop_assert_eq!(got.retrieved, want.retrieved);
    }

    /// DBCH structural invariants hold for any database and fill factors.
    #[test]
    fn dbch_shape_invariants(raws in db_strategy(3..40), max_fill in 4usize..9) {
        let scheme = scheme_for("SAPLA").unwrap();
        let reducer = SaplaReducer::new();
        let reps: Vec<Representation> =
            raws.iter().map(|s| reducer.reduce(s, 12).unwrap()).collect();
        let tree = DbchTree::build(scheme.as_ref(), reps, 2, max_fill).unwrap();
        let shape = tree.shape();
        prop_assert_eq!(shape.entries, raws.len());
        prop_assert!(shape.leaf_nodes >= raws.len().div_ceil(max_fill));
        prop_assert!(shape.height >= 1);
        // Every leaf holds at most max_fill entries on average.
        prop_assert!(shape.avg_leaf_fill() <= max_fill as f64 + 1e-9);
    }

    /// The k-NN result never contains duplicates and is sorted by exact
    /// distance, for both trees.
    #[test]
    fn knn_results_are_sound(raws in db_strategy(6..25), k in 1usize..8) {
        let scheme = scheme_for("SAPLA").unwrap();
        let reducer = SaplaReducer::new();
        let reps: Vec<Representation> =
            raws.iter().map(|s| reducer.reduce(s, 12).unwrap()).collect();
        let rtree = RTree::build(scheme.as_ref(), reps.clone(), 2, 5).unwrap();
        let dbch = DbchTree::build(scheme.as_ref(), reps, 2, 5).unwrap();
        let q = Query::new(&raws[raws.len() - 1], &reducer, 12).unwrap();
        for stats in [
            rtree.knn(&q, k, scheme.as_ref(), &raws).unwrap(),
            dbch.knn(&q, k, scheme.as_ref(), &raws).unwrap(),
        ] {
            prop_assert!(stats.retrieved.len() <= k);
            let mut ids = stats.retrieved.clone();
            ids.sort_unstable();
            ids.dedup();
            prop_assert_eq!(ids.len(), stats.retrieved.len(), "duplicates in result");
            prop_assert!(stats.distances.windows(2).all(|w| w[0] <= w[1]));
            prop_assert!(stats.measured <= raws.len());
            for (&id, &d) in stats.retrieved.iter().zip(&stats.distances) {
                let exact = q.raw.euclidean(&raws[id]).unwrap();
                prop_assert!((exact - d).abs() < 1e-9);
            }
        }
    }

    /// The query-compiled `Dist_PAR` plan, the SoA leaf kernel, and the
    /// early-abandoning bound change *how* the filter is computed, never
    /// *what* it answers: with the plan on (abandoning on or off) and
    /// with the plan stripped (the stock re-partitioning path), both
    /// trees and the filtered scan return bit-identical stats —
    /// retrieved ids, exact distances, and measured counts.
    #[test]
    fn planned_and_abandoning_searches_are_bit_identical(
        raws in db_strategy(6..25),
        k in 1usize..6,
    ) {
        let reducer = SaplaReducer::new();
        let reps: Vec<Representation> =
            raws.iter().map(|s| reducer.reduce(s, 12).unwrap()).collect();
        let rtree = RTree::build(&AdaptiveLinearScheme::default(), reps.clone(), 2, 5).unwrap();
        let dbch = DbchTree::build(&AdaptiveLinearScheme::default(), reps.clone(), 2, 5).unwrap();
        let planned = Query::new(&raws[0], &reducer, 12).unwrap();
        prop_assert!(planned.plan.is_some(), "SAPLA queries must carry a plan");
        let mut stock = Query::new(&raws[0], &reducer, 12).unwrap();
        stock.plan = None;
        let abandon_on = AdaptiveLinearScheme::default();
        let abandon_off = AdaptiveLinearScheme { abandon: false };
        // (query, scheme) variants; the stripped-plan one is the
        // pre-plan reference implementation.
        let variants: [(&Query, &dyn Scheme, &str); 3] = [
            (&stock, &abandon_on, "stock"),
            (&planned, &abandon_on, "planned+abandon"),
            (&planned, &abandon_off, "planned"),
        ];
        for (path, search) in [
            ("rtree", Box::new(|q: &Query, s: &dyn Scheme| rtree.knn(q, k, s, &raws).unwrap())
                as Box<dyn Fn(&Query, &dyn Scheme) -> sapla_index::SearchStats>),
            ("dbch", Box::new(|q: &Query, s: &dyn Scheme| dbch.knn(q, k, s, &raws).unwrap())),
            ("scan", Box::new(|q: &Query, s: &dyn Scheme| {
                filtered_scan_knn(q, &reps, &raws, k, s).unwrap()
            })),
        ] {
            let want = search(variants[0].0, variants[0].1);
            for &(q, s, name) in &variants[1..] {
                let got = search(q, s);
                prop_assert_eq!(&got, &want, "{} / {}", path, name);
                for (gd, wd) in got.distances.iter().zip(&want.distances) {
                    prop_assert!(gd.to_bits() == wd.to_bits(), "{} / {}", path, name);
                }
            }
        }
    }

    /// Parallel batch reduction is bit-for-bit the sequential one for any
    /// database, segment budget, and thread count.
    #[test]
    fn parallel_reduction_is_bit_identical(
        raws in db_strategy(3..30),
        m in 2usize..6,
    ) {
        let reducer = SaplaReducer::new();
        let budget = 3 * m; // SAPLA coefficients come in ⟨a, b, r⟩ triples.
        let seq = reduce_batch(&reducer, &raws, budget).unwrap();
        for threads in [1usize, 2, 4, 7] {
            let par = reduce_batch_parallel(&reducer, &raws, budget, threads).unwrap();
            prop_assert_eq!(&par, &seq, "threads = {}", threads);
        }
    }

    /// Parallel ingest (work-stealing reduction + sequential build) gives
    /// a tree whose shape and search results are bit-for-bit those of the
    /// fully sequential pipeline, for every thread count.
    #[test]
    fn parallel_ingest_is_bit_identical(
        raws in db_strategy(5..25),
        k in 1usize..5,
    ) {
        let scheme = scheme_for("SAPLA").unwrap();
        let reducer = SaplaReducer::new();
        let reps: Vec<Representation> =
            raws.iter().map(|s| reducer.reduce(s, 12).unwrap()).collect();
        let seq = DbchTree::build_with_rule(
            scheme.as_ref(), reps, 2, 5, NodeDistRule::Paper,
        ).unwrap();
        let q = Query::new(&raws[0], &reducer, 12).unwrap();
        let want = seq.knn(&q, k, scheme.as_ref(), &raws).unwrap();
        for threads in [1usize, 2, 4, 7] {
            let tree = ingest_parallel(
                scheme.as_ref(), &reducer, &raws, 12, 2, 5,
                NodeDistRule::Paper, threads,
            ).unwrap();
            prop_assert_eq!(tree.shape(), seq.shape(), "threads = {}", threads);
            let got = tree.knn(&q, k, scheme.as_ref(), &raws).unwrap();
            prop_assert_eq!(&got, &want, "threads = {}", threads);
        }
    }

    /// Parallel multi-query k-NN returns, per query, bit-for-bit the
    /// sequential answer — including exact distances and measured counts —
    /// and its lock-free aggregate equals the per-query sum.
    #[test]
    fn parallel_knn_batch_is_bit_identical(
        raws in db_strategy(6..25),
        k in 1usize..6,
        n_queries in 2usize..9,
    ) {
        let scheme = scheme_for("SAPLA").unwrap();
        let reducer = SaplaReducer::new();
        let reps: Vec<Representation> =
            raws.iter().map(|s| reducer.reduce(s, 12).unwrap()).collect();
        let tree = DbchTree::build(scheme.as_ref(), reps, 2, 5).unwrap();
        let n_queries = n_queries.min(raws.len());
        let queries = prepare_queries(&raws[..n_queries], &reducer, 12, 2).unwrap();
        let seq: Vec<_> = queries
            .iter()
            .map(|q| tree.knn(q, k, scheme.as_ref(), &raws).unwrap())
            .collect();
        for threads in [1usize, 2, 4, 7] {
            let (got, batch) =
                knn_batch(&tree, &queries, k, scheme.as_ref(), &raws, threads).unwrap();
            prop_assert_eq!(&got, &seq, "threads = {}", threads);
            for (g, s) in got.iter().zip(&seq) {
                for (gd, sd) in g.distances.iter().zip(&s.distances) {
                    prop_assert!(gd.to_bits() == sd.to_bits());
                }
            }
            prop_assert_eq!(
                batch.measured,
                seq.iter().map(|s| s.measured).sum::<usize>()
            );
        }
    }
}
