//! Property-based tests over the index structures: GEMINI exactness for
//! valid bounds, structural invariants, and build/insert equivalence.

use proptest::prelude::*;
use sapla_baselines::{Paa, Pla, Reducer, SaplaReducer};
use sapla_core::{Representation, TimeSeries};
use sapla_index::{
    linear_scan_knn, linear_scan_range, scheme_for, DbchTree, Query, RTree,
};

/// Random small database of regime-style series.
fn db_strategy(n_series: std::ops::Range<usize>) -> impl Strategy<Value = Vec<TimeSeries>> {
    (
        n_series,
        proptest::collection::vec((-3.0f64..3.0, -0.2f64..0.2, 0.0f64..std::f64::consts::TAU), 40),
    )
        .prop_map(|(count, params)| {
            (0..count)
                .map(|i| {
                    let (lvl, slope, phase) = params[i % params.len()];
                    TimeSeries::new(
                        (0..48)
                            .map(|t| {
                                let x = t as f64;
                                lvl + slope * x + ((x * 0.4) + phase + i as f64).sin()
                            })
                            .collect(),
                    )
                    .unwrap()
                    .znormalized()
                })
                .collect()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// With PAA's unconditional bounds, the R-tree k-NN equals the linear
    /// scan for every k (GEMINI's no-false-dismissal guarantee).
    #[test]
    fn rtree_paa_knn_is_exact(raws in db_strategy(8..30), k in 1usize..6) {
        let scheme = scheme_for("PAA");
        let reps: Vec<Representation> =
            raws.iter().map(|s| Paa.reduce(s, 8).unwrap()).collect();
        let tree = RTree::build(scheme.as_ref(), reps, 2, 5).unwrap();
        let q = Query::new(&raws[0], &Paa, 8).unwrap();
        let got = tree.knn(&q, k, scheme.as_ref(), &raws).unwrap();
        let want = linear_scan_knn(&raws[0], &raws, k).unwrap();
        prop_assert_eq!(got.retrieved, want.retrieved);
    }

    /// Same guarantee for PLA, through range queries.
    #[test]
    fn rtree_pla_range_is_exact(raws in db_strategy(8..30), eps in 0.5f64..15.0) {
        let scheme = scheme_for("PLA");
        let reps: Vec<Representation> =
            raws.iter().map(|s| Pla.reduce(s, 8).unwrap()).collect();
        let tree = RTree::build(scheme.as_ref(), reps, 2, 5).unwrap();
        let q = Query::new(&raws[0], &Pla, 8).unwrap();
        let got = tree.range(&q, eps, scheme.as_ref(), &raws).unwrap();
        let want = linear_scan_range(&raws[0], &raws, eps).unwrap();
        prop_assert_eq!(got.retrieved, want.retrieved);
    }

    /// DBCH structural invariants hold for any database and fill factors.
    #[test]
    fn dbch_shape_invariants(raws in db_strategy(3..40), max_fill in 4usize..9) {
        let scheme = scheme_for("SAPLA");
        let reducer = SaplaReducer::new();
        let reps: Vec<Representation> =
            raws.iter().map(|s| reducer.reduce(s, 12).unwrap()).collect();
        let tree = DbchTree::build(scheme.as_ref(), reps, 2, max_fill).unwrap();
        let shape = tree.shape();
        prop_assert_eq!(shape.entries, raws.len());
        prop_assert!(shape.leaf_nodes >= raws.len().div_ceil(max_fill));
        prop_assert!(shape.height >= 1);
        // Every leaf holds at most max_fill entries on average.
        prop_assert!(shape.avg_leaf_fill() <= max_fill as f64 + 1e-9);
    }

    /// The k-NN result never contains duplicates and is sorted by exact
    /// distance, for both trees.
    #[test]
    fn knn_results_are_sound(raws in db_strategy(6..25), k in 1usize..8) {
        let scheme = scheme_for("SAPLA");
        let reducer = SaplaReducer::new();
        let reps: Vec<Representation> =
            raws.iter().map(|s| reducer.reduce(s, 12).unwrap()).collect();
        let rtree = RTree::build(scheme.as_ref(), reps.clone(), 2, 5).unwrap();
        let dbch = DbchTree::build(scheme.as_ref(), reps, 2, 5).unwrap();
        let q = Query::new(&raws[raws.len() - 1], &reducer, 12).unwrap();
        for stats in [
            rtree.knn(&q, k, scheme.as_ref(), &raws).unwrap(),
            dbch.knn(&q, k, scheme.as_ref(), &raws).unwrap(),
        ] {
            prop_assert!(stats.retrieved.len() <= k);
            let mut ids = stats.retrieved.clone();
            ids.sort_unstable();
            ids.dedup();
            prop_assert_eq!(ids.len(), stats.retrieved.len(), "duplicates in result");
            prop_assert!(stats.distances.windows(2).all(|w| w[0] <= w[1]));
            prop_assert!(stats.measured <= raws.len());
            for (&id, &d) in stats.retrieved.iter().zip(&stats.distances) {
                let exact = q.raw.euclidean(&raws[id]).unwrap();
                prop_assert!((exact - d).abs() < 1e-9);
            }
        }
    }
}
