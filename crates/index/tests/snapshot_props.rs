//! Property tests pinning snapshot persistence to the live engine:
//! exact-leaf snapshots must replay searches **bit-identically**, and
//! ε-quantized snapshots must stay within the derived perturbation
//! bound while keeping GEMINI pruning sound (the strict-invariants
//! builds of CI re-check `Dist_LB ≤ exact + slack` inside every
//! refinement these searches perform).

use proptest::prelude::*;
use sapla_core::TimeSeries;
use sapla_index::{Engine, EngineConfig, NodeDistRule, TreeKind};

/// Random small database of regime-style series.
fn db_strategy(n_series: std::ops::Range<usize>) -> impl Strategy<Value = Vec<TimeSeries>> {
    (
        n_series,
        proptest::collection::vec((-3.0f64..3.0, -0.2f64..0.2, 0.0f64..std::f64::consts::TAU), 40),
    )
        .prop_map(|(count, params)| {
            (0..count)
                .map(|i| {
                    let (lvl, slope, phase) = params[i % params.len()];
                    TimeSeries::new(
                        (0..48)
                            .map(|t| {
                                let x = t as f64;
                                lvl + slope * x + ((x * 0.4) + phase + i as f64).sin()
                            })
                            .collect(),
                    )
                    .unwrap()
                    .znormalized()
                })
                .collect()
        })
}

fn engine(raws: &[TimeSeries], shards: usize, tree: TreeKind) -> Engine {
    let cfg = EngineConfig { shards, tree, ..EngineConfig::default() };
    Engine::build(cfg, Box::new(sapla_baselines::SaplaReducer::new()), raws.to_vec(), 2).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Exact-leaf snapshots are a pure serialization: the loaded engine
    /// answers every query with bit-identical distances, identical ids,
    /// and identical measured counts — i.e. it replays the very same
    /// traversal the builder would.
    #[test]
    fn exact_snapshot_knn_is_bit_identical(
        raws in db_strategy(6..28),
        k in 1usize..6,
        shards in 1usize..4,
        rtree in 0usize..2,
    ) {
        let tree = if rtree == 1 { TreeKind::Rtree } else { TreeKind::Dbch };
        let built = engine(&raws, shards, tree);
        let queries = built.prepare(&raws[..raws.len().min(5)], 2).unwrap();
        let (want, want_batch) = built.knn(&queries, k, 2).unwrap();
        let image = built.snapshot_image(None).unwrap();
        let loaded = Engine::from_snapshot_image(&image).unwrap();
        prop_assert_eq!(loaded.config(), built.config());
        let (got, got_batch) = loaded.knn(&queries, k, 2).unwrap();
        prop_assert_eq!(&got, &want);
        prop_assert_eq!(got_batch, want_batch);
        for (g, w) in got.iter().zip(&want) {
            for (gd, wd) in g.distances.iter().zip(&w.distances) {
                prop_assert!(gd.to_bits() == wd.to_bits());
            }
        }
    }

    /// ε-quantized snapshots: answers carry **exact** Euclidean
    /// distances (refinement reads the bit-preserved raws), every
    /// returned distance is achievable by some database member, the
    /// carried slack obeys the write-time bound, and under
    /// strict-invariants every refinement inside these searches
    /// re-proves `Dist_LB ≤ exact + slack`.
    #[test]
    fn quantized_snapshot_stays_epsilon_bounded(
        raws in db_strategy(6..24),
        k in 1usize..5,
        step in 1e-4f64..5e-2,
    ) {
        let built = engine(&raws, 1, TreeKind::Dbch);
        let image = built.snapshot_image(Some(step)).unwrap();
        let loaded = Engine::from_snapshot_image(&image).unwrap();
        // δ = √(Σ_j dist_s_sq) with per-coefficient error ≤ ε/2 over
        // windows summing to n points, so δ ≤ (ε/2)·(1 + u_max)·√n is a
        // very loose ceiling; the write-time value must sit under it.
        let n = raws[0].len() as f64;
        prop_assert!(loaded.lb_slack() >= 0.0);
        prop_assert!(loaded.lb_slack() <= 0.5 * step * (1.0 + n) * n.sqrt());
        let queries = loaded.prepare(&raws[..raws.len().min(4)], 2).unwrap();
        let (got, _) = loaded.knn(&queries, k, 2).unwrap();
        for (qi, stats) in got.iter().enumerate() {
            // Distances are exact: re-derivable from the raw series.
            for (&id, &d) in stats.retrieved.iter().zip(&stats.distances) {
                let exact = raws[qi].euclidean(&raws[id]).unwrap();
                prop_assert!((exact - d).abs() < 1e-9);
            }
            prop_assert_eq!(stats.retrieved[0], qi, "self is its own 1-NN at distance 0");
            prop_assert!(stats.distances[0] == 0.0);
        }
    }

    /// Quantized snapshots never falsely dismiss a true neighbour: with
    /// an unconditional pipeline (PLA's `dist_pla` leaf filter, which is
    /// a true lower bound for identical segmentations, under the
    /// Triangle node rule) the quantized-loaded engine's kNN must match
    /// a brute-force linear scan over the raws rank for rank. Rounding
    /// can push the stored bound *above* the true distance by up to the
    /// carried slack, so this holds only because every pruning
    /// comparison is widened by `lb_slack` — the false-dismissal
    /// regression this test pins.
    #[test]
    fn quantized_snapshot_matches_linear_scan_ground_truth(
        raws in db_strategy(8..24),
        k in 1usize..5,
        step in 1e-3f64..2e-1,
    ) {
        let cfg = EngineConfig { rule: NodeDistRule::Triangle, ..EngineConfig::default() };
        let built =
            Engine::build(cfg, Box::new(sapla_baselines::Pla::new()), raws.to_vec(), 2).unwrap();
        let image = built.snapshot_image(Some(step)).unwrap();
        let loaded = Engine::from_snapshot_image(&image).unwrap();
        let queries = loaded.prepare(&raws[..raws.len().min(4)], 2).unwrap();
        let (got, _) = loaded.knn(&queries, k, 2).unwrap();
        for (qi, stats) in got.iter().enumerate() {
            // Brute-force ground truth, ordered like the engine merge
            // ((distance, id) total order).
            let mut truth: Vec<(f64, usize)> = raws
                .iter()
                .enumerate()
                .map(|(id, s)| (raws[qi].euclidean(s).unwrap(), id))
                .collect();
            truth.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            prop_assert_eq!(stats.retrieved.len(), k.min(raws.len()));
            for (rank, (&id, &d)) in stats.retrieved.iter().zip(&stats.distances).enumerate() {
                // Distance spectrum matches exactly per rank; ids may
                // permute only within ties.
                prop_assert!(
                    (d - truth[rank].0).abs() < 1e-9,
                    "query {} rank {}: engine {} vs ground truth {} (step {})",
                    qi, rank, d, truth[rank].0, step
                );
                let exact = raws[qi].euclidean(&raws[id]).unwrap();
                prop_assert!((exact - d).abs() < 1e-9);
            }
        }
    }

    /// The container rejects, never panics on, arbitrary corruption of
    /// a real snapshot image: any single-byte change is caught by the
    /// checksum, and truncation at any point is an error.
    #[test]
    fn corrupted_engine_snapshots_error_cleanly(
        raws in db_strategy(4..10),
        byte_seed in 0u64..u64::MAX,
    ) {
        let built = engine(&raws, 1, TreeKind::Dbch);
        let image = built.snapshot_image(None).unwrap();
        let at = (byte_seed as usize) % image.len();
        let mut mutated = image.clone();
        mutated[at] ^= 1u8 << (byte_seed % 8);
        prop_assert!(Engine::from_snapshot_image(&mutated).is_err());
        let cut = (byte_seed as usize) % image.len();
        prop_assert!(Engine::from_snapshot_image(&image[..cut]).is_err());
    }
}
