//! Property tests that only exist under `--features strict-invariants`:
//! both index structures run k-NN and ε-range searches with the runtime
//! invariant layer armed across the whole stack — core re-validates every
//! reduction, `Dist_LB` terms are sanity-checked, and every refinement
//! step asserts `Dist_LB ≤ exact Euclidean` (the unconditional bound the
//! GEMINI framework rests on).
#![cfg(feature = "strict-invariants")]

use proptest::prelude::*;
use sapla_baselines::{Reducer, SaplaReducer};
use sapla_core::{Representation, TimeSeries};
use sapla_index::scheme::{scheme_for, Query};
use sapla_index::{DbchTree, RTree};

/// A small deterministic dataset seeded by proptest-chosen parameters.
fn dataset(n_series: usize, len: usize, phase: f64) -> Vec<TimeSeries> {
    (0..n_series)
        .map(|i| {
            TimeSeries::new(
                (0..len)
                    .map(|t| {
                        ((t + i * 7) as f64 * 0.19 + phase).sin() * (1.0 + (i % 4) as f64 * 0.3)
                            + (i as f64 * 0.83).cos() * 0.4
                    })
                    .collect(),
            )
            .unwrap()
            .znormalized()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Searches through both trees complete with every strict check armed:
    /// any understated β, ill-formed Dist_S term or lower-bound violation
    /// at a refinement step panics the case.
    #[test]
    fn searches_pass_under_armed_invariants(
        n_series in 20usize..45,
        phase in 0.0f64..6.0,
        qi in 0usize..20,
        k in 1usize..6,
    ) {
        let raws = dataset(n_series, 48, phase);
        let reducer = SaplaReducer::new();
        let scheme = scheme_for("SAPLA").unwrap();
        let reps: Vec<Representation> =
            raws.iter().map(|s| reducer.reduce(s, 12).unwrap()).collect();

        let dbch = DbchTree::build(scheme.as_ref(), reps.clone(), 2, 5).unwrap();
        let rtree = RTree::build(scheme.as_ref(), reps, 2, 5).unwrap();

        let q = Query::new(&raws[qi], &reducer, 12).unwrap();
        let d_stats = dbch.knn(&q, k, scheme.as_ref(), &raws).unwrap();
        let r_stats = rtree.knn(&q, k, scheme.as_ref(), &raws).unwrap();
        // The filters are `Dist_PAR`-based and therefore conditional (the
        // paper's honest caveat), so no cross-tree agreement is asserted
        // here — the point is that every refinement the trees *do* perform
        // runs the armed `Dist_LB ≤ exact` check. Distances themselves
        // must be sound: sorted, finite, non-negative.
        prop_assert_eq!(d_stats.retrieved.len(), k);
        prop_assert_eq!(r_stats.retrieved.len(), k);
        for stats in [&d_stats, &r_stats] {
            prop_assert!(stats.distances.windows(2).all(|w| w[0] <= w[1]));
            prop_assert!(stats.distances.iter().all(|d| d.is_finite() && *d >= 0.0));
        }

        // Range searches drive the other refinement sites; every hit must
        // genuinely lie within ε.
        let eps = d_stats.distances[k - 1];
        for stats in
            [dbch.range(&q, eps, scheme.as_ref(), &raws).unwrap(),
             rtree.range(&q, eps, scheme.as_ref(), &raws).unwrap()]
        {
            prop_assert!(stats.distances.iter().all(|d| *d <= eps));
        }
    }
}
