//! Insert/remove churn stress for the DBCH condense path.
//!
//! A long-lived service mutates its index for days: entries arrive,
//! entries are dropped, underfull nodes dissolve and reinsert their
//! orphans (`DbchTree::remove`). This suite drives thousands of
//! interleaved inserts and removes and, at checkpoints, asserts the
//! full structural contract:
//!
//! * `DbchTree::validate` — hulls bitwise-consistent with current
//!   membership, SoA leaf blocks in sync with their leaves, entry
//!   bookkeeping sound;
//! * membership equals the ground-truth live set;
//! * full-enumeration kNN (`k = |live|`, so the candidate heap never
//!   fills and nothing is pruned) is **bit-identical** to a freshly
//!   rebuilt tree over the same membership — the answer must not
//!   depend on the mutation history.
//!
//! Run under `--features strict-invariants` (the `just audit` gate)
//! this additionally checks `Dist_LB ≤ exact` at every refinement.

use sapla_baselines::{Reducer, SaplaReducer};
use sapla_core::{Representation, TimeSeries};
use sapla_index::{scheme_for, DbchTree, KnnScratch, Query, Scheme};

const LEN: usize = 64;
const M: usize = 12;

/// Deterministic xorshift64* so the churn schedule is reproducible.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Distinct-looking synthetic series, deterministic in `seed`.
fn series(seed: usize, len: usize) -> TimeSeries {
    TimeSeries::new(
        (0..len)
            .map(|t| {
                ((t + seed * 17) as f64 * 0.23).sin() * (1.0 + (seed % 7) as f64 * 0.25)
                    + ((t * 3) as f64 * 0.05 + seed as f64 * 0.71).cos() * 0.6
                    + (seed as f64 * 0.013) * t as f64 / len as f64
            })
            .collect(),
    )
    .unwrap()
    .znormalized()
}

/// Full-enumeration kNN against the churned tree must be bit-identical
/// to a fresh rebuild over the same membership. Rebuilt entry `j` maps
/// to global id `live_sorted[j]`; the map is monotone, so the
/// `(distance, id)` result order is comparable across the two trees.
fn assert_matches_rebuild(
    tree: &DbchTree,
    scheme: &dyn Scheme,
    reducer: &SaplaReducer,
    raws: &[TimeSeries],
    reps: &[Representation],
    live_sorted: &[usize],
) {
    let fresh_reps: Vec<Representation> = live_sorted.iter().map(|&id| reps[id].clone()).collect();
    let fresh_raws: Vec<TimeSeries> = live_sorted.iter().map(|&id| raws[id].clone()).collect();
    let fresh = DbchTree::build(scheme, fresh_reps, 2, 5).unwrap();
    fresh.validate(scheme).unwrap();
    assert_eq!(tree.entry_ids(), live_sorted);

    let k = live_sorted.len();
    let mut scratch = KnnScratch::new();
    let probes = [series(3, LEN), series(1_000_003, LEN), series(7_777, LEN)];
    for (pi, probe) in probes.iter().enumerate() {
        let q = Query::new(probe, reducer, M).unwrap();
        let churned = tree.knn_with_scratch(&q, k, scheme, raws, &mut scratch).unwrap();
        let rebuilt = fresh.knn(&q, k, scheme, &fresh_raws).unwrap();
        assert_eq!(churned.retrieved.len(), k, "probe {pi}: full enumeration");
        let mapped: Vec<usize> = rebuilt.retrieved.iter().map(|&j| live_sorted[j]).collect();
        assert_eq!(churned.retrieved, mapped, "probe {pi}: answer depends on mutation history");
        for (i, (cd, rd)) in churned.distances.iter().zip(&rebuilt.distances).enumerate() {
            assert_eq!(
                cd.to_bits(),
                rd.to_bits(),
                "probe {pi}, rank {i}: churned {cd} vs rebuilt {rd}"
            );
        }
        // With k = |live| nothing can be pruned: every live entry is
        // measured exactly once in both trees.
        assert_eq!(churned.measured, k, "probe {pi}");
    }
}

#[test]
fn thousands_of_interleaved_inserts_and_removes_keep_the_tree_sound() {
    let reducer = SaplaReducer::new();
    let scheme = scheme_for("SAPLA").unwrap();
    for seed in [0x5EED_0001u64, 0xD15E_A5E5] {
        let mut rng = XorShift(seed);
        let mut raws: Vec<TimeSeries> = (0..40).map(|i| series(i, LEN)).collect();
        let mut reps: Vec<Representation> =
            raws.iter().map(|s| reducer.reduce(s, M).unwrap()).collect();
        let mut tree = DbchTree::build(scheme.as_ref(), reps.clone(), 2, 5).unwrap();
        tree.validate(scheme.as_ref()).unwrap();
        let mut live: Vec<usize> = (0..40).collect();
        let mut next_seed = 40usize;

        for op in 0..2_000 {
            // Drift the population up and down so both the split path
            // (growth) and the condense path (shrink-triggered orphan
            // reinsertion) run thousands of times, including through
            // deep-tree and nearly-empty regimes.
            let phase = (op / 250) % 2; // 0 = grow towards 120, 1 = shrink towards 8
            let grow = if live.len() <= 8 {
                true
            } else if live.len() >= 120 {
                false
            } else if phase == 0 {
                rng.below(4) < 3
            } else {
                rng.below(4) < 1
            };
            if grow {
                let s = series(next_seed, LEN);
                next_seed += 1;
                let rep = reducer.reduce(&s, M).unwrap();
                let id = tree.insert(scheme.as_ref(), rep.clone()).unwrap();
                assert_eq!(id, raws.len(), "arena ids must stay dense");
                raws.push(s);
                reps.push(rep);
                live.push(id);
            } else {
                let id = live.swap_remove(rng.below(live.len()));
                assert!(tree.remove(scheme.as_ref(), id).unwrap(), "id {id} was live");
                assert!(
                    !tree.remove(scheme.as_ref(), id).unwrap(),
                    "double remove of {id} must report not-found"
                );
            }

            if op % 100 == 99 {
                tree.validate(scheme.as_ref()).unwrap();
                let mut sorted = live.clone();
                sorted.sort_unstable();
                assert_eq!(tree.entry_ids(), sorted, "op {op}");
            }
            if op % 500 == 499 {
                let mut sorted = live.clone();
                sorted.sort_unstable();
                assert_matches_rebuild(&tree, scheme.as_ref(), &reducer, &raws, &reps, &sorted);
            }
        }

        tree.validate(scheme.as_ref()).unwrap();
        let mut sorted = live;
        sorted.sort_unstable();
        assert_matches_rebuild(&tree, scheme.as_ref(), &reducer, &raws, &reps, &sorted);
    }
}

#[test]
fn churn_down_to_empty_and_back_up() {
    let reducer = SaplaReducer::new();
    let scheme = scheme_for("SAPLA").unwrap();
    let raws: Vec<TimeSeries> = (0..25).map(|i| series(i + 500, LEN)).collect();
    let mut reps: Vec<Representation> =
        raws.iter().map(|s| reducer.reduce(s, M).unwrap()).collect();
    let mut tree = DbchTree::build(scheme.as_ref(), reps.clone(), 2, 5).unwrap();

    // Remove everything, in an order that repeatedly dissolves nodes.
    for id in (0..25).rev().chain(std::iter::empty()) {
        assert!(tree.remove(scheme.as_ref(), id).unwrap());
        tree.validate(scheme.as_ref()).unwrap();
    }
    assert!(tree.entry_ids().is_empty());

    // The emptied tree must accept inserts again and stay sound.
    let mut raws2 = raws.clone();
    for i in 0..30 {
        let s = series(i + 900, LEN);
        let rep = reducer.reduce(&s, M).unwrap();
        let id = tree.insert(scheme.as_ref(), rep.clone()).unwrap();
        assert_eq!(id, reps.len());
        reps.push(rep);
        raws2.push(s);
    }
    tree.validate(scheme.as_ref()).unwrap();
    assert_eq!(tree.entry_ids(), (25..55).collect::<Vec<_>>());
    let q = Query::new(&raws2[30], &reducer, M).unwrap();
    let stats = tree.knn(&q, 3, scheme.as_ref(), &raws2).unwrap();
    assert_eq!(stats.retrieved[0], 30, "an indexed series is its own 1-NN");
}
