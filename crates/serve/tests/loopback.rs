//! Loopback integration tests for the daemon: a real `TcpListener` on
//! `127.0.0.1:0`, real client connections, concurrent load.
//!
//! The load-bearing property is pinned in
//! [`concurrent_clients_get_bit_identical_answers`]: whatever admission
//! batches the server happens to coalesce under concurrency, every
//! query's answer is bit-identical to the single-process
//! `Engine::knn` (= `knn_batch`) path.

use std::sync::Arc;

use sapla_baselines::SaplaReducer;
use sapla_core::codec::decode_collection;
use sapla_core::TimeSeries;
use sapla_index::{Engine, EngineConfig, SearchStats, TreeKind};
use sapla_serve::{Client, MetricsFormat, Server, ServerConfig};

const LEN: usize = 64;

fn samples(i: usize) -> Vec<f64> {
    (0..LEN)
        .map(|t| {
            ((t + i * 13) as f64 * 0.19).sin() * (1.0 + (i % 4) as f64 * 0.3)
                + (i as f64 * 0.37).cos() * 0.4
        })
        .collect()
}

fn dataset(n: usize) -> Vec<TimeSeries> {
    (0..n).map(|i| TimeSeries::new(samples(i)).unwrap().znormalized()).collect()
}

/// Raw query vectors, already z-normalized to match the dataset.
fn query_samples(n: usize) -> Vec<Vec<f64>> {
    dataset(n).iter().map(|s| s.values().to_vec()).collect()
}

fn build_engine(raws: &[TimeSeries], shards: usize, tree: TreeKind) -> Engine {
    let cfg = EngineConfig { shards, tree, ..EngineConfig::default() };
    Engine::build(cfg, Box::new(SaplaReducer::new()), raws.to_vec(), 2).unwrap()
}

/// Local ground truth through the same engine code path the server
/// batches into.
fn local_answers(reference: &Engine, queries: &[Vec<f64>], k: usize) -> Vec<SearchStats> {
    let raws: Vec<TimeSeries> =
        queries.iter().map(|q| TimeSeries::new(q.clone()).unwrap()).collect();
    let prepared = reference.prepare(&raws, 2).unwrap();
    reference.knn(&prepared, k, 2).unwrap().0
}

fn assert_matches_local(got: &sapla_serve::KnnResponse, want: &[SearchStats], context: &str) {
    assert_eq!(got.per_query.len(), want.len(), "{context}: query count");
    for (qi, (g, w)) in got.per_query.iter().zip(want).enumerate() {
        let want_hits: Vec<(u64, u64)> = w
            .retrieved
            .iter()
            .zip(&w.distances)
            .map(|(&id, &d)| (id as u64, d.to_bits()))
            .collect();
        let got_hits: Vec<(u64, u64)> = g.hits.iter().map(|&(id, d)| (id, d.to_bits())).collect();
        assert_eq!(got_hits, want_hits, "{context}: query {qi} differs from the local engine");
        assert_eq!(g.measured, w.measured as u64, "{context}: query {qi} measured");
    }
}

#[test]
fn serves_knn_bit_identical_to_the_local_batch_path() {
    let raws = dataset(48);
    let queries = query_samples(10);
    let reference = build_engine(&raws, 1, TreeKind::Dbch);
    let want = local_answers(&reference, &queries, 5);

    let server = Server::start(
        build_engine(&raws, 1, TreeKind::Dbch),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let got = client.knn(&queries, 5).unwrap();
    assert_matches_local(&got, &want, "sequential");
    // A lone request is its own admission batch, so the batch counters
    // must equal this very batch's.
    let want_measured: usize = want.iter().map(|s| s.measured).sum();
    assert_eq!(got.batch_measured, want_measured as u64);
    assert_eq!(got.batch_candidates, (queries.len() * raws.len()) as u64);
    server.stop();
}

#[test]
fn sharded_server_agrees_with_a_local_sharded_engine() {
    let raws = dataset(60);
    let queries = query_samples(6);
    let reference = build_engine(&raws, 3, TreeKind::Dbch);
    let want = local_answers(&reference, &queries, 4);

    let server = Server::start(
        build_engine(&raws, 3, TreeKind::Dbch),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let got = client.knn(&queries, 4).unwrap();
    assert_matches_local(&got, &want, "sharded");
    server.stop();
}

/// ≥2 concurrent connections hammer the daemon; coalesced or not, every
/// reply must be bit-identical to the local engine. Mixed `k` values
/// exercise the batcher's group-by-k splitting.
#[test]
fn concurrent_clients_get_bit_identical_answers() {
    let raws = dataset(64);
    let reference = Arc::new(build_engine(&raws, 1, TreeKind::Dbch));
    let server = Server::start(
        build_engine(&raws, 1, TreeKind::Dbch),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap();
    let addr = server.addr();

    const CLIENTS: usize = 4;
    const ROUNDS: usize = 5;
    let handles: Vec<_> = (0..CLIENTS)
        .map(|ci| {
            let reference = Arc::clone(&reference);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let k = 3 + ci % 3; // three distinct k values across clients
                for round in 0..ROUNDS {
                    let queries: Vec<Vec<f64>> =
                        (0..3).map(|j| samples(100 + ci * 31 + round * 7 + j)).collect();
                    let want = local_answers(&reference, &queries, k);
                    let got = client.knn(&queries, k).unwrap();
                    let ctx = format!("client {ci} round {round}");
                    assert_matches_local(&got, &want, &ctx);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let mut client = Client::connect(addr).unwrap();
    let stats = client.stats().unwrap();
    let total_queries = CLIENTS * ROUNDS * 3;
    assert!(stats.contains("\"server\""), "stats is a JSON document: {stats}");
    assert!(
        stats.contains(&format!("\"batched_queries\": {total_queries}")),
        "every query must ride an admission batch: {stats}"
    );
    assert!(!stats.contains("\"batches\": 0"), "at least one batch ran: {stats}");
    if sapla_obs::enabled() {
        // The obs registry must carry the serve-layer metrics and the
        // engine's pruning counters (non-zero by construction: the
        // queries above all measured candidates).
        for name in
            ["serve.requests", "serve.batch.queries", "serve.request.ns", "index.knn.queries"]
        {
            assert!(stats.contains(name), "obs snapshot should name {name}: {stats}");
        }
    }
    server.stop();
}

#[test]
fn range_queries_roundtrip() {
    let raws = dataset(35);
    let queries = query_samples(3);
    let reference = build_engine(&raws, 1, TreeKind::Dbch);
    let server = Server::start(
        build_engine(&raws, 1, TreeKind::Dbch),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    for q in &queries {
        let raw = TimeSeries::new(q.clone()).unwrap();
        let prepared = reference.prepare(std::slice::from_ref(&raw), 1).unwrap();
        let want = reference.range(&prepared[0], 4.0).unwrap();
        let got = client.range(q, 4.0).unwrap();
        let want_hits: Vec<(u64, u64)> = want
            .retrieved
            .iter()
            .zip(&want.distances)
            .map(|(&id, &d)| (id as u64, d.to_bits()))
            .collect();
        let got_hits: Vec<(u64, u64)> = got.hits.iter().map(|&(id, d)| (id, d.to_bits())).collect();
        assert_eq!(got_hits, want_hits);
        assert!(!got.hits.is_empty(), "the query itself is within epsilon");
    }
    assert!(client.range(&queries[0], -1.0).is_err(), "negative epsilon is rejected");
    server.stop();
}

#[test]
fn snapshot_reload_cycle_preserves_answers_and_survives_garbage() {
    let raws = dataset(40);
    let queries = query_samples(5);
    let server = Server::start(
        build_engine(&raws, 2, TreeKind::Dbch),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let before = client.knn(&queries, 4).unwrap();

    let blob = client.snapshot().unwrap();
    assert_eq!(decode_collection(&blob).unwrap().len(), raws.len(), "snapshot is a codec blob");

    // Explicit blob, then the empty-blob self-round-trip.
    assert_eq!(client.reload(&blob).unwrap(), raws.len() as u64);
    assert_eq!(client.reload(&[]).unwrap(), raws.len() as u64);
    let after = client.knn(&queries, 4).unwrap();
    assert_eq!(after.per_query, before.per_query, "reload must not change answers");

    // Garbage and membership changes are rejected; the server keeps
    // serving on the old engine.
    assert!(client.reload(b"not a snapshot").is_err());
    let smaller = build_engine(&raws[..10], 1, TreeKind::Dbch).snapshot().unwrap();
    let mut smaller_bytes = Vec::new();
    {
        use bytes::Buf;
        smaller_bytes.extend_from_slice(smaller.chunk());
    }
    assert!(client.reload(&smaller_bytes).is_err(), "membership change is rejected");
    let still = client.knn(&queries, 4).unwrap();
    assert_eq!(still.per_query, before.per_query);

    let stats = client.stats().unwrap();
    assert!(stats.contains("\"reloads\": 2"), "two successful reloads: {stats}");
    assert!(stats.contains("\"generation\": 2"), "generation tracks reloads: {stats}");
    server.stop();
}

#[test]
fn empty_reload_rereads_the_configured_snapshot_file() {
    let raws = dataset(30);
    let queries = query_samples(4);
    let path = std::env::temp_dir().join(format!("sapla-serve-reload-{}.snap", std::process::id()));
    let server = Server::start(
        build_engine(&raws[..10], 1, TreeKind::Dbch),
        "127.0.0.1:0",
        ServerConfig { index_file: Some(path.clone()), ..ServerConfig::default() },
    )
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    // Publish a *larger* index to the snapshot file, then reload with an
    // empty blob: the file is authoritative, so membership may change —
    // unlike the codec path, which pins the record count.
    build_engine(&raws, 2, TreeKind::Dbch).write_snapshot_file(&path, None).unwrap();
    assert_eq!(client.reload(&[]).unwrap(), raws.len() as u64);
    let got = client.knn(&queries, 3).unwrap();
    let want = local_answers(&build_engine(&raws, 2, TreeKind::Dbch), &queries, 3);
    assert_matches_local(&got, &want, "reload-from-file");

    // Non-empty blobs still take the codec round-trip path.
    let blob = client.snapshot().unwrap();
    assert_eq!(client.reload(&blob).unwrap(), raws.len() as u64);

    // A vanished file is an error response, not a crash, and the server
    // keeps answering on the generation it already has.
    std::fs::remove_file(&path).unwrap();
    assert!(client.reload(&[]).is_err(), "missing index file is a clean error");
    let still = client.knn(&queries, 3).unwrap();
    assert_eq!(still.per_query, got.per_query);
    server.stop();
}

#[test]
fn rtree_backed_server_answers_batches() {
    let raws = dataset(40);
    let queries = query_samples(6);
    let reference = build_engine(&raws, 1, TreeKind::Rtree);
    let want = local_answers(&reference, &queries, 3);
    let server = Server::start(
        build_engine(&raws, 1, TreeKind::Rtree),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let got = client.knn(&queries, 3).unwrap();
    assert_matches_local(&got, &want, "rtree");
    server.stop();
}

#[test]
fn malformed_requests_get_error_responses_not_disconnects() {
    let raws = dataset(20);
    let queries = query_samples(2);
    let server = Server::start(
        build_engine(&raws, 1, TreeKind::Dbch),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    assert!(client.knn(&queries, 0).is_err(), "k = 0");
    assert!(client.knn(&[], 3).is_err(), "no queries");
    let bad = vec![vec![f64::NAN; LEN]];
    assert!(client.knn(&bad, 3).is_err(), "non-finite samples");
    let empty = vec![Vec::new()];
    assert!(client.knn(&empty, 3).is_err(), "empty series");

    // The same connection still works after every rejected request.
    let ok = client.knn(&queries, 3).unwrap();
    assert_eq!(ok.per_query.len(), 2);
    server.stop();
}

#[test]
fn wire_shutdown_drains_and_stops_the_server() {
    let raws = dataset(20);
    let queries = query_samples(2);
    let server = Server::start(
        build_engine(&raws, 1, TreeKind::Dbch),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap();
    let addr = server.addr();
    let mut client = Client::connect(addr).unwrap();
    client.knn(&queries, 2).unwrap();
    client.shutdown().unwrap();
    // join() returns only once the accept loop, connection threads, and
    // batcher have all wound down.
    server.join();
    assert!(
        Client::connect(addr).is_err() || {
            // The OS may hand the port to a fresh connect() briefly; a
            // request on it must fail either way.
            let mut c = Client::connect(addr).unwrap();
            c.knn(&queries, 1).is_err()
        }
    );
}

fn assert_balanced(json: &str, context: &str) {
    let opens = json.matches(['{', '[']).count();
    let closes = json.matches(['}', ']']).count();
    assert_eq!(opens, closes, "{context}: unbalanced JSON:\n{json}");
}

#[test]
fn metrics_exposition_parses_in_both_formats() {
    let raws = dataset(30);
    let queries = query_samples(4);
    let server = Server::start(
        build_engine(&raws, 2, TreeKind::Dbch),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    client.knn(&queries, 3).unwrap();

    let json = client.metrics(MetricsFormat::Json).unwrap();
    assert_balanced(&json, "metrics json");
    for key in ["\"server\"", "\"obs\"", "\"latency\"", "\"trace\"", "\"armed\"", "\"recent\""] {
        assert!(json.contains(key), "metrics JSON missing {key}:\n{json}");
    }

    let text = client.metrics(MetricsFormat::Text).unwrap();
    assert!(text.contains("# TYPE sapla_server counter"), "text exposition header:\n{text}");
    assert!(
        text.lines().any(|l| l.starts_with("sapla_server{name=\"requests\"} ")),
        "server counters as samples:\n{text}"
    );
    assert!(text.contains("sapla_slow_log_size 0"), "slow log off => empty:\n{text}");

    if sapla_obs::enabled() {
        // Stage rows surface over the wire (pre-registered, and the kNN
        // above exercised them), with self-describing buckets.
        for name in ["serve.stage.queue", "serve.stage.execute", "serve.request"] {
            assert!(json.contains(name), "metrics JSON missing stage row {name}:\n{json}");
            assert!(text.contains(name), "metrics text missing stage row {name}:\n{text}");
        }
        assert!(
            text.lines().any(|l| l.starts_with("sapla_hist_bucket{name=\"serve.request.ns\"")),
            "histogram buckets carry bounds:\n{text}"
        );
        // In-process view of the same registry: every percentile row the
        // exposition reports must be monotone and clamped to its max.
        let snap = sapla_obs::Snapshot::capture();
        assert!(!snap.windows.is_empty());
        for w in &snap.windows {
            assert!(
                w.p50 <= w.p95 && w.p95 <= w.p99 && w.p99 <= w.max,
                "percentiles must be monotone: {w:?}"
            );
        }
    }
    server.stop();
}

#[test]
fn metrics_surface_preregistered_stage_rows_before_traffic() {
    let raws = dataset(12);
    let server = Server::start(
        build_engine(&raws, 1, TreeKind::Dbch),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    // No kNN traffic on this server: idle stages must still be listed
    // (zeros rather than omissions), per the pre-registration pattern.
    let json = client.metrics(MetricsFormat::Json).unwrap();
    assert_balanced(&json, "idle metrics json");
    if sapla_obs::enabled() {
        for stage in ["decode", "prepare", "queue", "batch", "execute", "merge", "reply"] {
            let name = format!("serve.stage.{stage}");
            assert!(json.contains(&name), "idle metrics must name {name}:\n{json}");
        }
        for name in ["serve.request.ns", "serve.batch.jobs", "engine.shard.knn.ns"] {
            assert!(json.contains(name), "idle metrics must name {name}:\n{json}");
        }
    }
    server.stop();
}

#[test]
fn traces_decompose_end_to_end_latency_into_stages() {
    if !sapla_obs::enabled() {
        return; // the recorder compiles away without obs
    }
    let raws = dataset(40);
    let queries = query_samples(3);
    let server = Server::start(
        build_engine(&raws, 2, TreeKind::Dbch),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    // k = 6 is unique to this test, so its traces are identifiable even
    // with other loopback tests hammering the shared recorder ring.
    client.knn(&queries, 6).unwrap();

    let k_idx = sapla_obs::recorder::Meta::K as usize;
    let traces: Vec<_> = sapla_obs::recorder::recent(sapla_obs::recorder::TRACE_CAPACITY)
        .into_iter()
        .filter(|d| d.meta[k_idx] == 6)
        .collect();
    assert!(!traces.is_empty(), "the k=6 request must have left a trace");
    for d in &traces {
        let names: Vec<&str> = d.stages.iter().map(|&(n, _, _)| n).collect();
        for stage in ["decode", "prepare", "queue", "batch", "execute", "merge", "reply"] {
            assert!(names.contains(&stage), "trace {d:?} is missing stage {stage}");
        }
        assert!(d.total_ns > 0, "completed trace has an end stamp: {d:?}");
        assert!(
            d.stage_sum_ns() <= d.total_ns,
            "stages are disjoint sub-intervals, so their sum is bounded by \
             the end-to-end latency: {d:?}"
        );
        let nq = d.meta[sapla_obs::recorder::Meta::BatchQueries as usize];
        assert!(nq >= queries.len() as u64, "the batch carried at least our queries: {d:?}");
    }

    // The same decomposition is retrievable over the wire.
    let json = client.metrics(MetricsFormat::Json).unwrap();
    for stage in ["\"decode\"", "\"queue\"", "\"execute\"", "\"reply\""] {
        assert!(json.contains(stage), "wire metrics must carry stage names:\n{json}");
    }
    server.stop();
}

#[test]
fn slow_query_log_captures_over_threshold_requests() {
    let raws = dataset(30);
    let queries = query_samples(2);
    // Threshold 0 ms: every completed request is deliberately "slow",
    // which keeps the test deterministic without real delays.
    let cfg = ServerConfig { slow_ms: Some(0), ..ServerConfig::default() };
    let server = Server::start(build_engine(&raws, 1, TreeKind::Dbch), "127.0.0.1:0", cfg).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    client.knn(&queries, 5).unwrap();

    let json = client.metrics(MetricsFormat::Json).unwrap();
    assert_balanced(&json, "slow-log metrics json");
    assert!(json.contains("\"slow_threshold_ns\": 0"), "threshold surfaces:\n{json}");
    let text = client.metrics(MetricsFormat::Text).unwrap();
    assert!(text.contains("sapla_slow_threshold_ns 0"), "threshold in text:\n{text}");
    if sapla_obs::enabled() {
        let slow = json.split("\"slow\": ").nth(1).unwrap_or("");
        assert!(
            slow.contains("\"stages\""),
            "the slow log must carry complete stage traces:\n{json}"
        );
        assert!(
            !text.contains("sapla_slow_log_size 0"),
            "at least one request overran the 0ms threshold:\n{text}"
        );
    } else {
        assert!(json.contains("\"slow\": []"), "recorder off => empty slow log:\n{json}");
    }
    server.stop();
}

/// Hand-rolled frames (the wire module is private): malformed
/// `OP_METRICS` bodies must produce error *responses*, never a panic or
/// a dropped connection.
#[test]
fn malformed_metrics_frames_get_error_responses() {
    use std::io::{Read, Write};

    fn roundtrip_raw(stream: &mut std::net::TcpStream, payload: &[u8]) -> Vec<u8> {
        let len = u32::try_from(payload.len()).unwrap();
        stream.write_all(&len.to_le_bytes()).unwrap();
        stream.write_all(payload).unwrap();
        stream.flush().unwrap();
        let mut len4 = [0u8; 4];
        stream.read_exact(&mut len4).unwrap();
        let mut response = vec![0u8; u32::from_le_bytes(len4) as usize];
        stream.read_exact(&mut response).unwrap();
        response
    }

    let raws = dataset(12);
    let server = Server::start(
        build_engine(&raws, 1, TreeKind::Dbch),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap();
    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();

    // Truncated (no format byte), unknown format, trailing garbage.
    for bad in [&[0x07u8][..], &[0x07, 0x09], &[0x07, 0x00, 0x00]] {
        let response = roundtrip_raw(&mut stream, bad);
        assert_eq!(response.first(), Some(&1u8), "status ERR for {bad:?}: {response:?}");
    }
    // The connection survives and a well-formed request still answers.
    let response = roundtrip_raw(&mut stream, &[0x07, 0x00]);
    assert_eq!(response.first(), Some(&0u8), "valid OP_METRICS after errors");
    server.stop();
}

/// Regression: `Server::stop` must terminate even when shutdown races
/// the batcher's check-then-wait entry. The pre-fix `initiate_shutdown`
/// stored the shutdown flag *outside* the queue lock, so its notify
/// could land between the batcher's flag check and its wait — nobody
/// was waiting yet, the wakeup was lost, and `stop()` hung joining the
/// batcher. The admission-queue model in
/// `crates/audit/tests/model_serve.rs` reproduces that lost wakeup
/// deterministically; this test guards the wiring under real threads,
/// where an immediate stop lands close to the batcher's wait entry.
#[test]
fn stop_terminates_promptly_even_when_racing_the_batcher() {
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let raws = dataset(8);
        for _ in 0..50 {
            let server = Server::start(
                build_engine(&raws, 1, TreeKind::Dbch),
                "127.0.0.1:0",
                ServerConfig::default(),
            )
            .unwrap();
            server.stop();
        }
        let _ = done_tx.send(());
    });
    done_rx
        .recv_timeout(std::time::Duration::from_secs(120))
        .expect("Server::stop hung: a shutdown wakeup was lost");
}
