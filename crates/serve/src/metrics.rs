//! `OP_METRICS` exposition builders: the extended JSON document
//! (stats + `latency` + `trace` sections) and a Prometheus-style text
//! format. Both are built from the same inputs — the `server` counters,
//! the `sapla-obs` snapshot, the flight-recorder ring, and the server's
//! slow-query log — so the two formats never disagree on a value's
//! source, only on its spelling.

use sapla_obs::recorder::{self, TraceDump, META_NAMES};
use sapla_obs::Snapshot;

/// Most recent completed traces included in the `trace.recent` section.
const RECENT_TRACES: usize = 16;

fn push_trace(out: &mut String, d: &TraceDump, indent: &str) {
    out.push_str(&format!(
        "{{\"id\": {}, \"total_ns\": {}, \"stage_sum_ns\": {}, \"meta\": {{",
        d.id,
        d.total_ns,
        d.stage_sum_ns()
    ));
    for (i, (name, v)) in META_NAMES.iter().zip(d.meta).enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{name}\": {v}"));
    }
    out.push_str("}, \"stages\": [");
    for (i, &(name, off, dur)) in d.stages.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n{indent}  {{\"name\": \"{name}\", \"start_ns\": {off}, \"dur_ns\": {dur}}}"
        ));
    }
    if !d.stages.is_empty() {
        out.push('\n');
        out.push_str(indent);
    }
    out.push_str("]}");
}

fn push_trace_array(out: &mut String, traces: &[TraceDump], indent: &str) {
    out.push('[');
    for (i, d) in traces.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        out.push_str(indent);
        push_trace(out, d, indent);
    }
    if !traces.is_empty() {
        out.push('\n');
        // Closing bracket sits one level shallower than the elements.
        out.push_str(indent.strip_suffix("  ").unwrap_or(indent));
    }
    out.push(']');
}

/// The `OP_METRICS` JSON document: the `stats` payload extended with a
/// `latency` section (windowed percentile rows) and a `trace` section
/// (recorder state, recent traces, and the slow-query log).
pub(crate) fn metrics_json(server_obj: &str, slow_ns: Option<u64>, slow: &[TraceDump]) -> String {
    let snap = Snapshot::capture();
    let mut out = String::new();
    out.push_str("{\n  \"server\": ");
    out.push_str(server_obj);
    out.push_str(",\n  \"obs\": ");
    out.push_str(snap.to_json().trim_end());
    out.push_str(",\n  \"latency\": [");
    for (i, w) in snap.windows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            concat!(
                "\n    {{\"name\": \"{}\", \"lane\": {}, \"count\": {}, ",
                "\"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}}}"
            ),
            w.name, w.lane, w.count, w.p50, w.p95, w.p99, w.max
        ));
    }
    if !snap.windows.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"trace\": {\"armed\": ");
    out.push_str(if recorder::armed() { "true" } else { "false" });
    out.push_str(", \"slow_threshold_ns\": ");
    match slow_ns {
        Some(ns) => out.push_str(&ns.to_string()),
        None => out.push_str("null"),
    }
    out.push_str(", \"recent\": ");
    push_trace_array(&mut out, &recorder::recent(RECENT_TRACES), "    ");
    out.push_str(", \"slow\": ");
    push_trace_array(&mut out, slow, "    ");
    out.push_str("}\n}\n");
    out
}

/// One Prometheus-style sample line: `metric{name="...",...} value`.
fn sample(out: &mut String, metric: &str, labels: &[(&str, &str)], value: u64) {
    out.push_str(metric);
    if !labels.is_empty() {
        out.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            // Metric names are ASCII identifiers with dots; escape the
            // reserved characters anyway so arbitrary names stay valid.
            for c in v.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(&value.to_string());
    out.push('\n');
}

/// Prometheus-style text exposition of the same state `metrics_json`
/// reports: server counters, obs counters/gauges/lanes, self-describing
/// histogram buckets, windowed percentiles, and slow-log gauges.
pub(crate) fn metrics_text(
    server_counters: &[(&'static str, u64)],
    slow_ns: Option<u64>,
    slow: &[TraceDump],
) -> String {
    let snap = Snapshot::capture();
    let mut out = String::new();
    out.push_str("# TYPE sapla_server counter\n");
    for &(name, v) in server_counters {
        sample(&mut out, "sapla_server", &[("name", name)], v);
    }
    out.push_str("# TYPE sapla_counter counter\n");
    for (name, v) in &snap.counters {
        sample(&mut out, "sapla_counter", &[("name", name)], *v);
    }
    out.push_str("# TYPE sapla_gauge gauge\n");
    for (name, v) in &snap.gauges {
        sample(&mut out, "sapla_gauge", &[("name", name)], *v);
    }
    out.push_str("# TYPE sapla_lane counter\n");
    for (name, lanes) in &snap.lanes {
        for (lane, v) in lanes.iter().enumerate() {
            sample(&mut out, "sapla_lane", &[("name", name), ("lane", &lane.to_string())], *v);
        }
    }
    out.push_str("# TYPE sapla_hist histogram\n");
    for h in &snap.histograms {
        sample(&mut out, "sapla_hist_count", &[("name", &h.name)], h.count);
        sample(&mut out, "sapla_hist_sum", &[("name", &h.name)], h.sum);
        for &(lo, hi, c) in &h.buckets {
            sample(
                &mut out,
                "sapla_hist_bucket",
                &[("name", &h.name), ("lower", &lo.to_string()), ("upper", &hi.to_string())],
                c,
            );
        }
    }
    out.push_str("# TYPE sapla_window gauge\n");
    for w in &snap.windows {
        let lane = w.lane.to_string();
        let labels: &[(&str, &str)] = &[("name", &w.name), ("lane", &lane)];
        sample(&mut out, "sapla_window_count", labels, w.count);
        sample(&mut out, "sapla_window_p50_ns", labels, w.p50);
        sample(&mut out, "sapla_window_p95_ns", labels, w.p95);
        sample(&mut out, "sapla_window_p99_ns", labels, w.p99);
        sample(&mut out, "sapla_window_max_ns", labels, w.max);
    }
    out.push_str("# TYPE sapla_slow gauge\n");
    if let Some(ns) = slow_ns {
        sample(&mut out, "sapla_slow_threshold_ns", &[], ns);
    }
    sample(&mut out, "sapla_slow_log_size", &[], slow.len() as u64);
    out
}
