//! The daemon: accept loop, per-connection threads, admission-batching
//! queue, and the batcher thread that feeds the engine (crate docs have
//! the picture).

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::Instant;

use bytes::Buf;
use sapla_core::TimeSeries;
use sapla_index::{BatchStats, Engine, Query, SearchStats};

use crate::wire::{self, Request};
use crate::Result;

/// Per-instance knobs (everything index-shaped lives in
/// [`sapla_index::EngineConfig`] instead).
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads per engine call (`0` = all available cores).
    pub threads: usize,
    /// Per-frame byte cap (defaults to [`wire::MAX_FRAME`]).
    pub max_frame: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig { threads: 0, max_frame: wire::MAX_FRAME }
    }
}

/// One enqueued kNN request: prepared queries plus the channel its
/// connection thread is blocked on.
struct Job {
    queries: Vec<Query>,
    k: usize,
    reply: mpsc::Sender<std::result::Result<(Vec<SearchStats>, BatchStats), String>>,
}

/// Plain atomic counters mirrored into the `stats` response. These are
/// always live (unlike the `sapla-obs` registry, which compiles away
/// without `--features obs`).
#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    batches: AtomicU64,
    batched_queries: AtomicU64,
    max_batch_queries: AtomicU64,
    reloads: AtomicU64,
    generation: AtomicU64,
}

struct Shared {
    /// The serving engine. Readers clone the inner `Arc` and release
    /// the lock immediately, so a reload (write lock + swap) never
    /// waits on, or interrupts, in-flight queries.
    engine: RwLock<Arc<Engine>>,
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
    /// Clones of every accepted connection's stream; shutdown closes
    /// them so connection threads blocked in a read wake up and exit.
    streams: Mutex<Vec<TcpStream>>,
    counters: Counters,
    threads: usize,
    max_frame: usize,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Shared {
    fn current_engine(&self) -> Arc<Engine> {
        Arc::clone(&self.engine.read().unwrap_or_else(PoisonError::into_inner))
    }
}

/// A running daemon. Dropping the handle does **not** stop the server;
/// call [`Server::stop`] (or send a `shutdown` request and then
/// [`Server::join`]).
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    batcher: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Bind `addr` (use port `0` for an ephemeral port) and start the
    /// accept and batcher threads around `engine`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the listener cannot bind.
    pub fn start(engine: Engine, addr: impl ToSocketAddrs, cfg: ServerConfig) -> Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            engine: RwLock::new(Arc::new(engine)),
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            streams: Mutex::new(Vec::new()),
            counters: Counters::default(),
            threads: cfg.threads,
            max_frame: cfg.max_frame,
        });
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let batcher = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || batch_loop(&shared))
        };
        let accept = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            std::thread::spawn(move || accept_loop(&listener, &shared, &conns))
        };
        Ok(Server { shared, addr: local, accept: Some(accept), batcher: Some(batcher), conns })
    }

    /// The bound address (resolves port `0` to the real port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// `true` once a shutdown has been requested (via [`Server::stop`]
    /// or a client `shutdown` command).
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::Acquire)
    }

    /// Request shutdown and wait for every thread to finish. The
    /// batcher drains already-queued work; open connections are closed
    /// (clients mid-request see the socket drop).
    pub fn stop(mut self) {
        initiate_shutdown(&self.shared, self.addr);
        self.join_threads();
    }

    /// Wait for the server to stop on its own (i.e. for a client's
    /// `shutdown` command). Queued queries are drained first.
    pub fn join(mut self) {
        self.join_threads();
    }

    fn join_threads(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Connection threads exit once their peer closes or the
        // shutdown flag is up and their reads drain; the accept loop
        // has already stopped admitting new ones.
        loop {
            let handle = lock(&self.conns).pop();
            match handle {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
        if let Some(h) = self.batcher.take() {
            let _ = h.join();
        }
    }
}

/// Raise the shutdown flag *while holding the queue lock*, then wake
/// the batcher. Holding the lock for the store is what makes the
/// wakeup reliable: the batcher checks the flag and enters its wait
/// under the same lock, so a store made outside it could land between
/// that check and the wait — the notify would find no waiter and the
/// batcher would sleep forever (`Server::stop` hang). The admission
/// queue model (`crates/audit/tests/model_serve.rs`) reproduces that
/// lost wakeup against the unlocked variant and verifies this one.
fn raise_shutdown_flag(shared: &Shared) {
    {
        let _queue = lock(&shared.queue);
        shared.shutdown.store(true, Ordering::Release);
    }
    shared.available.notify_all();
}

/// Flip the flag, wake the batcher, close every open connection (so
/// threads blocked in a read exit), and poke the listener so its
/// blocking `accept` returns.
fn initiate_shutdown(shared: &Shared, addr: SocketAddr) {
    raise_shutdown_flag(shared);
    for stream in lock(&shared.streams).drain(..) {
        let _ = stream.shutdown(std::net::Shutdown::Both);
    }
    // A throwaway connection unblocks `TcpListener::incoming`; the
    // accept loop re-checks the flag before handling it.
    drop(TcpStream::connect(addr));
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>, conns: &Mutex<Vec<JoinHandle<()>>>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        register_stream(shared, &stream);
        let local = listener.local_addr().ok();
        let shared = Arc::clone(shared);
        let handle = std::thread::spawn(move || connection_loop(stream, &shared, local));
        lock(conns).push(handle);
    }
}

/// Track a clone of the accepted stream for shutdown. The flag is
/// re-checked under the registry lock: `initiate_shutdown` sets it
/// before draining, so a racing registration either lands in the drain
/// or closes itself here.
fn register_stream(shared: &Shared, stream: &TcpStream) {
    if let Ok(clone) = stream.try_clone() {
        let mut registry = lock(&shared.streams);
        if shared.shutdown.load(Ordering::Acquire) {
            let _ = clone.shutdown(std::net::Shutdown::Both);
        } else {
            registry.push(clone);
        }
    }
}

/// Record request latency; consumes `started` even when obs is off so
/// the disabled macro (which drops its arguments unevaluated) leaves no
/// unused binding behind.
fn record_latency(started: Instant) {
    let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    sapla_obs::hist!("serve.request.ns", ns);
    let _ = ns;
}

fn connection_loop(mut stream: TcpStream, shared: &Arc<Shared>, local: Option<SocketAddr>) {
    let _ = stream.set_nodelay(true);
    // A clean close, socket death, or an oversized frame all end the
    // conversation; only a well-formed frame keeps the loop alive.
    while let Ok(Some(payload)) = wire::read_frame(&mut stream, shared.max_frame) {
        let started = Instant::now();
        shared.counters.requests.fetch_add(1, Ordering::Relaxed);
        sapla_obs::counter!("serve.requests");
        let (response, shutdown_after) = match wire::decode_request(&payload) {
            Ok(req) => {
                let is_shutdown = matches!(req, Request::Shutdown);
                (handle_request(shared, req), is_shutdown)
            }
            Err(msg) => (wire::err_response(&msg), false),
        };
        record_latency(started);
        if wire::write_frame(&mut stream, &response).is_err() {
            break;
        }
        if shutdown_after {
            if let Some(addr) = local {
                initiate_shutdown(shared, addr);
            } else {
                raise_shutdown_flag(shared);
            }
            break;
        }
    }
}

/// Serve one decoded request; every failure becomes an error response.
fn handle_request(shared: &Arc<Shared>, req: Request) -> Vec<u8> {
    match req {
        Request::Knn { k, queries } => handle_knn(shared, k, &queries),
        Request::Range { epsilon, query } => handle_range(shared, epsilon, query),
        Request::Stats => wire::ok_text_response(&stats_json(shared)),
        Request::Snapshot => match shared.current_engine().snapshot() {
            Ok(blob) => wire::ok_blob_response(blob.chunk()),
            Err(e) => wire::err_response(&e.to_string()),
        },
        Request::Reload { blob } => handle_reload(shared, blob),
        Request::Shutdown => wire::ok_empty_response(),
    }
}

fn handle_knn(shared: &Arc<Shared>, k: usize, queries: &[Vec<f64>]) -> Vec<u8> {
    if k == 0 {
        return wire::err_response("k must be at least 1");
    }
    if queries.is_empty() {
        return wire::err_response("a kNN request needs at least one query");
    }
    let engine = shared.current_engine();
    let raws: sapla_core::Result<Vec<TimeSeries>> =
        queries.iter().map(|q| TimeSeries::new(q.clone())).collect();
    let prepared = match raws.and_then(|r| engine.prepare(&r, shared.threads)) {
        Ok(p) => p,
        Err(e) => return wire::err_response(&e.to_string()),
    };
    // Hand the prepared queries to the batcher and block on the reply.
    // Queries only depend on the reducer and `m`, both invariant across
    // reloads, so they stay valid whichever engine generation answers.
    let (tx, rx) = mpsc::channel();
    {
        // The flag is checked under the queue lock: the batcher only
        // exits once the flag is up *and* the queue is empty (also
        // under the lock), so a job admitted here is guaranteed an
        // answer — no request can strand in `recv` below.
        let mut queue = lock(&shared.queue);
        if shared.shutdown.load(Ordering::Acquire) {
            return wire::err_response("server is shutting down");
        }
        queue.push_back(Job { queries: prepared, k, reply: tx });
        sapla_obs::gauge_max!("serve.queue.depth.hwm", queue.len() as u64);
    }
    shared.available.notify_one();
    match rx.recv() {
        Ok(Ok((per_query, batch))) => {
            wire::ok_knn_response(&per_query, batch.measured as u64, batch.candidates as u64)
        }
        Ok(Err(msg)) => wire::err_response(&msg),
        Err(_) => wire::err_response("server is shutting down"),
    }
}

fn handle_range(shared: &Arc<Shared>, epsilon: f64, query: Vec<f64>) -> Vec<u8> {
    if !(epsilon.is_finite() && epsilon >= 0.0) {
        return wire::err_response("epsilon must be finite and non-negative");
    }
    let engine = shared.current_engine();
    let answer = TimeSeries::new(query)
        .and_then(|raw| engine.prepare(std::slice::from_ref(&raw), 1))
        .and_then(|qs| match qs.first() {
            Some(q) => engine.range(q, epsilon),
            None => Err(sapla_core::Error::EmptySeries),
        });
    match answer {
        Ok(stats) => wire::ok_range_response(&stats),
        Err(e) => wire::err_response(&e.to_string()),
    }
}

fn handle_reload(shared: &Arc<Shared>, blob: Vec<u8>) -> Vec<u8> {
    let engine = shared.current_engine();
    // An empty blob means "rebuild from your own snapshot" — the
    // round-trip exercises codec + rebuild without shipping bytes.
    let own: Vec<u8>;
    let blob: &[u8] = if blob.is_empty() {
        match engine.snapshot() {
            Ok(b) => {
                own = b.chunk().to_vec();
                &own
            }
            Err(e) => return wire::err_response(&e.to_string()),
        }
    } else {
        &blob
    };
    match engine.reload_from_snapshot(blob) {
        Ok(fresh) => {
            let records = fresh.len() as u64;
            *shared.engine.write().unwrap_or_else(PoisonError::into_inner) = Arc::new(fresh);
            shared.counters.reloads.fetch_add(1, Ordering::Relaxed);
            shared.counters.generation.fetch_add(1, Ordering::Relaxed);
            sapla_obs::counter!("serve.reloads");
            wire::ok_records_response(records)
        }
        Err(e) => wire::err_response(&e.to_string()),
    }
}

fn stats_json(shared: &Shared) -> String {
    let engine = shared.current_engine();
    let c = &shared.counters;
    format!(
        concat!(
            "{{\n",
            "  \"server\": {{\"tree\": \"{}\", \"method\": \"{}\", \"indexed\": {}, ",
            "\"shards\": {}, \"generation\": {}, \"requests\": {}, \"batches\": {}, ",
            "\"batched_queries\": {}, \"max_batch_queries\": {}, \"reloads\": {}}},\n",
            "  \"obs\": {}\n",
            "}}\n"
        ),
        engine.config().tree.name(),
        engine.method(),
        engine.len(),
        engine.shard_count(),
        c.generation.load(Ordering::Relaxed),
        c.requests.load(Ordering::Relaxed),
        c.batches.load(Ordering::Relaxed),
        c.batched_queries.load(Ordering::Relaxed),
        c.max_batch_queries.load(Ordering::Relaxed),
        c.reloads.load(Ordering::Relaxed),
        sapla_obs::Snapshot::capture().to_json().trim_end(),
    )
}

/// Drain every waiting job in one gulp, group by `k`, and answer each
/// group with a single engine call: admission batching. Exits when the
/// shutdown flag is up *and* the queue is empty, so queries accepted
/// before shutdown still get answers.
fn batch_loop(shared: &Arc<Shared>) {
    loop {
        let jobs: Vec<Job> = {
            let mut queue = lock(&shared.queue);
            loop {
                if !queue.is_empty() {
                    break queue.drain(..).collect();
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                queue = shared.available.wait(queue).unwrap_or_else(PoisonError::into_inner);
            }
        };
        run_batch(shared, jobs);
    }
}

fn run_batch(shared: &Arc<Shared>, mut jobs: Vec<Job>) {
    let total_queries: usize = jobs.iter().map(|j| j.queries.len()).sum();
    let c = &shared.counters;
    c.batches.fetch_add(1, Ordering::Relaxed);
    c.batched_queries.fetch_add(total_queries as u64, Ordering::Relaxed);
    c.max_batch_queries.fetch_max(total_queries as u64, Ordering::Relaxed);
    sapla_obs::hist!("serve.batch.jobs", jobs.len() as u64);
    sapla_obs::hist!("serve.batch.queries", total_queries as u64);
    let engine = shared.current_engine();

    // Group coalesced jobs by k (BTreeMap: deterministic order), keep
    // FIFO order within each group.
    let mut by_k: BTreeMap<usize, Vec<Job>> = BTreeMap::new();
    for job in jobs.drain(..) {
        by_k.entry(job.k).or_default().push(job);
    }
    for (k, group) in by_k {
        let mut all: Vec<Query> = Vec::new();
        let mut counts = Vec::with_capacity(group.len());
        let mut replies = Vec::with_capacity(group.len());
        for mut job in group {
            counts.push(job.queries.len());
            all.append(&mut job.queries);
            replies.push(job.reply);
        }
        match engine.knn(&all, k, shared.threads) {
            Ok((mut per_query, batch)) => {
                // Split the flat result vector back into per-job slices
                // (front to back, same order we concatenated).
                let mut rest = per_query.drain(..);
                for (count, reply) in counts.iter().zip(replies) {
                    let chunk: Vec<SearchStats> = rest.by_ref().take(*count).collect();
                    // A dead receiver just means the client hung up.
                    let _ = reply.send(Ok((chunk, batch)));
                }
            }
            Err(e) => {
                let msg = e.to_string();
                for reply in replies {
                    let _ = reply.send(Err(msg.clone()));
                }
            }
        }
    }
}
