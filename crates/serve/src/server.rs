//! The daemon: accept loop, per-connection threads, admission-batching
//! queue, and the batcher thread that feeds the engine (crate docs have
//! the picture).

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::Instant;

use bytes::Buf;
use sapla_core::TimeSeries;
use sapla_index::{BatchStats, Engine, Query, SearchStats};
use sapla_obs::recorder::{self, Meta, Stage, TraceDump, TraceId};

use crate::wire::{self, MetricsFormat, Request};
use crate::{metrics, Result};

/// Most traces the slow-query log retains (oldest evicted first).
const SLOW_LOG_CAP: usize = 32;

/// Per-instance knobs (everything index-shaped lives in
/// [`sapla_index::EngineConfig`] instead).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads per engine call (`0` = all available cores).
    pub threads: usize,
    /// Per-frame byte cap (defaults to [`wire::MAX_FRAME`]).
    pub max_frame: usize,
    /// Copy any request slower than this many milliseconds end-to-end
    /// into the slow-query log served by `OP_METRICS` (`None` = off).
    /// Needs the `obs` feature; without it the log stays empty.
    pub slow_ms: Option<u64>,
    /// On-disk `sapla-store` snapshot backing this instance. When set,
    /// an empty-blob `reload` request re-reads this file (an O(file
    /// size) cold-start-style load — membership may change between
    /// generations) instead of round-tripping the in-memory codec blob.
    pub index_file: Option<std::path::PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig { threads: 0, max_frame: wire::MAX_FRAME, slow_ms: None, index_file: None }
    }
}

/// One enqueued kNN request: prepared queries plus the channel its
/// connection thread is blocked on.
struct Job {
    queries: Vec<Query>,
    k: usize,
    reply: mpsc::Sender<std::result::Result<(Vec<SearchStats>, BatchStats), String>>,
    /// Flight-recorder handle of the originating request.
    trace: TraceId,
    /// Obs-clock enqueue timestamp: the queue-wait stage's start.
    enqueued_ns: u64,
}

/// Plain atomic counters mirrored into the `stats` response. These are
/// always live (unlike the `sapla-obs` registry, which compiles away
/// without `--features obs`).
#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    batches: AtomicU64,
    batched_queries: AtomicU64,
    max_batch_queries: AtomicU64,
    reloads: AtomicU64,
    generation: AtomicU64,
}

struct Shared {
    /// The serving engine. Readers clone the inner `Arc` and release
    /// the lock immediately, so a reload (write lock + swap) never
    /// waits on, or interrupts, in-flight queries.
    engine: RwLock<Arc<Engine>>,
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
    /// Clones of every accepted connection's stream; shutdown closes
    /// them so connection threads blocked in a read wake up and exit.
    streams: Mutex<Vec<TcpStream>>,
    counters: Counters,
    threads: usize,
    max_frame: usize,
    /// `--slow-ms` converted to nanoseconds (`None` = slow log off).
    slow_ns: Option<u64>,
    /// Bounded log of completed stage traces that overran `slow_ns`.
    /// Locked alone, never nested with `queue` or `streams`.
    slow_log: Mutex<VecDeque<TraceDump>>,
    /// Snapshot file an empty-blob `reload` re-reads (see
    /// [`ServerConfig::index_file`]).
    index_file: Option<std::path::PathBuf>,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Shared {
    fn current_engine(&self) -> Arc<Engine> {
        Arc::clone(&self.engine.read().unwrap_or_else(PoisonError::into_inner))
    }
}

/// A running daemon. Dropping the handle does **not** stop the server;
/// call [`Server::stop`] (or send a `shutdown` request and then
/// [`Server::join`]).
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    batcher: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Bind `addr` (use port `0` for an ephemeral port) and start the
    /// accept and batcher threads around `engine`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the listener cannot bind.
    pub fn start(engine: Engine, addr: impl ToSocketAddrs, cfg: ServerConfig) -> Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        preregister_metrics();
        let shared = Arc::new(Shared {
            engine: RwLock::new(Arc::new(engine)),
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            streams: Mutex::new(Vec::new()),
            counters: Counters::default(),
            threads: cfg.threads,
            max_frame: cfg.max_frame,
            slow_ns: cfg.slow_ms.map(|ms| ms.saturating_mul(1_000_000)),
            slow_log: Mutex::new(VecDeque::new()),
            index_file: cfg.index_file,
        });
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let batcher = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || batch_loop(&shared))
        };
        let accept = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            std::thread::spawn(move || accept_loop(&listener, &shared, &conns))
        };
        Ok(Server { shared, addr: local, accept: Some(accept), batcher: Some(batcher), conns })
    }

    /// The bound address (resolves port `0` to the real port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// `true` once a shutdown has been requested (via [`Server::stop`]
    /// or a client `shutdown` command).
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::Acquire)
    }

    /// Request shutdown and wait for every thread to finish. The
    /// batcher drains already-queued work; open connections are closed
    /// (clients mid-request see the socket drop).
    pub fn stop(mut self) {
        initiate_shutdown(&self.shared, self.addr);
        self.join_threads();
    }

    /// Wait for the server to stop on its own (i.e. for a client's
    /// `shutdown` command). Queued queries are drained first.
    pub fn join(mut self) {
        self.join_threads();
    }

    fn join_threads(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Connection threads exit once their peer closes or the
        // shutdown flag is up and their reads drain; the accept loop
        // has already stopped admitting new ones.
        loop {
            let handle = lock(&self.conns).pop();
            match handle {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
        if let Some(h) = self.batcher.take() {
            let _ = h.join();
        }
    }
}

/// Raise the shutdown flag *while holding the queue lock*, then wake
/// the batcher. Holding the lock for the store is what makes the
/// wakeup reliable: the batcher checks the flag and enters its wait
/// under the same lock, so a store made outside it could land between
/// that check and the wait — the notify would find no waiter and the
/// batcher would sleep forever (`Server::stop` hang). The admission
/// queue model (`crates/audit/tests/model_serve.rs`) reproduces that
/// lost wakeup against the unlocked variant and verifies this one.
fn raise_shutdown_flag(shared: &Shared) {
    {
        let _queue = lock(&shared.queue);
        shared.shutdown.store(true, Ordering::Release);
    }
    shared.available.notify_all();
}

/// Flip the flag, wake the batcher, close every open connection (so
/// threads blocked in a read exit), and poke the listener so its
/// blocking `accept` returns.
fn initiate_shutdown(shared: &Shared, addr: SocketAddr) {
    raise_shutdown_flag(shared);
    for stream in lock(&shared.streams).drain(..) {
        let _ = stream.shutdown(std::net::Shutdown::Both);
    }
    // A throwaway connection unblocks `TcpListener::incoming`; the
    // accept loop re-checks the flag before handling it.
    drop(TcpStream::connect(addr));
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>, conns: &Mutex<Vec<JoinHandle<()>>>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        register_stream(shared, &stream);
        let local = listener.local_addr().ok();
        let shared = Arc::clone(shared);
        let handle = std::thread::spawn(move || connection_loop(stream, &shared, local));
        lock(conns).push(handle);
    }
}

/// Track a clone of the accepted stream for shutdown. The flag is
/// re-checked under the registry lock: `initiate_shutdown` sets it
/// before draining, so a racing registration either lands in the drain
/// or closes itself here.
fn register_stream(shared: &Shared, stream: &TcpStream) {
    if let Ok(clone) = stream.try_clone() {
        let mut registry = lock(&shared.streams);
        if shared.shutdown.load(Ordering::Acquire) {
            let _ = clone.shutdown(std::net::Shutdown::Both);
        } else {
            registry.push(clone);
        }
    }
}

/// Register every serve metric before the first request, so `stats` /
/// `OP_METRICS` surface zero rows for idle stages instead of omitting
/// them. Call sites merge by name, so these zero-touch registrations
/// alias the hot-path statics in every snapshot.
fn preregister_metrics() {
    sapla_obs::counter!("serve.requests", 0);
    sapla_obs::counter!("serve.reloads", 0);
    sapla_obs::gauge_max!("serve.queue.depth.hwm", 0);
    sapla_obs::register_hist!("serve.request.ns");
    sapla_obs::register_hist!("serve.batch.jobs");
    sapla_obs::register_hist!("serve.batch.queries");
    sapla_obs::register_windowed!("serve.request");
    sapla_obs::register_windowed!("serve.stage.decode");
    sapla_obs::register_windowed!("serve.stage.prepare");
    sapla_obs::register_windowed!("serve.stage.queue");
    sapla_obs::register_windowed!("serve.stage.batch");
    sapla_obs::register_windowed!("serve.stage.execute");
    sapla_obs::register_windowed!("serve.stage.merge");
    sapla_obs::register_windowed!("serve.stage.reply");
    sapla_obs::register_windowed!("engine.shard.knn.ns");
}

/// Record one stage interval into the flight recorder *and* that
/// stage's windowed percentile sketch (macro names must be literals, so
/// the stage → sketch fanout is spelled out).
fn record_stage(trace: TraceId, stage: Stage, start_ns: u64, end_ns: u64) {
    recorder::stage(trace, stage, start_ns, end_ns);
    let dur = end_ns.saturating_sub(start_ns);
    match stage {
        Stage::Decode => sapla_obs::windowed!("serve.stage.decode", 0, dur),
        Stage::Prepare => sapla_obs::windowed!("serve.stage.prepare", 0, dur),
        Stage::Queue => sapla_obs::windowed!("serve.stage.queue", 0, dur),
        Stage::Batch => sapla_obs::windowed!("serve.stage.batch", 0, dur),
        Stage::Execute => sapla_obs::windowed!("serve.stage.execute", 0, dur),
        Stage::Merge => sapla_obs::windowed!("serve.stage.merge", 0, dur),
        Stage::Reply => sapla_obs::windowed!("serve.stage.reply", 0, dur),
    }
    let _ = dur;
}

/// Record request latency; consumes `started` even when obs is off so
/// the disabled macro (which drops its arguments unevaluated) leaves no
/// unused binding behind.
fn record_latency(started: Instant) {
    let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    sapla_obs::hist!("serve.request.ns", ns);
    sapla_obs::windowed!("serve.request", 0, ns);
    let _ = ns;
}

/// Copy a finished over-threshold trace into the bounded slow-query
/// log. The log lock is taken alone (never nested with `queue` or
/// `streams`), so it cannot participate in a lock cycle.
fn note_slow(shared: &Shared, trace: TraceId, elapsed_ns: u64) {
    let Some(threshold) = shared.slow_ns else { return };
    if elapsed_ns < threshold {
        return;
    }
    if let Some(dump) = recorder::fetch(trace) {
        let mut log = lock(&shared.slow_log);
        if log.len() == SLOW_LOG_CAP {
            log.pop_front();
        }
        log.push_back(dump);
    }
}

fn connection_loop(mut stream: TcpStream, shared: &Arc<Shared>, local: Option<SocketAddr>) {
    let _ = stream.set_nodelay(true);
    // A clean close, socket death, or an oversized frame all end the
    // conversation; only a well-formed frame keeps the loop alive.
    while let Ok(Some(payload)) = wire::read_frame(&mut stream, shared.max_frame) {
        let started = Instant::now();
        let trace = recorder::begin();
        let decode_start = sapla_obs::clock::now_ns();
        shared.counters.requests.fetch_add(1, Ordering::Relaxed);
        sapla_obs::counter!("serve.requests");
        let decoded = wire::decode_request(&payload);
        record_stage(trace, Stage::Decode, decode_start, sapla_obs::clock::now_ns());
        let (response, shutdown_after) = match decoded {
            Ok(req) => {
                let is_shutdown = matches!(req, Request::Shutdown);
                (handle_request(shared, req, trace), is_shutdown)
            }
            Err(msg) => (wire::err_response(&msg), false),
        };
        let reply_start = sapla_obs::clock::now_ns();
        let write_ok = wire::write_frame(&mut stream, &response).is_ok();
        record_stage(trace, Stage::Reply, reply_start, sapla_obs::clock::now_ns());
        let elapsed_ns = recorder::end(trace);
        record_latency(started);
        note_slow(shared, trace, elapsed_ns);
        if !write_ok {
            break;
        }
        if shutdown_after {
            if let Some(addr) = local {
                initiate_shutdown(shared, addr);
            } else {
                raise_shutdown_flag(shared);
            }
            break;
        }
    }
}

/// Serve one decoded request; every failure becomes an error response.
fn handle_request(shared: &Arc<Shared>, req: Request, trace: TraceId) -> Vec<u8> {
    match req {
        Request::Knn { k, queries } => handle_knn(shared, k, &queries, trace),
        Request::Range { epsilon, query } => handle_range(shared, epsilon, query),
        Request::Stats => wire::ok_text_response(&stats_json(shared)),
        Request::Snapshot => match shared.current_engine().snapshot() {
            Ok(blob) => wire::ok_blob_response(blob.chunk()),
            Err(e) => wire::err_response(&e.to_string()),
        },
        Request::Reload { blob } => handle_reload(shared, blob),
        Request::Shutdown => wire::ok_empty_response(),
        Request::Metrics { format } => {
            let text = match format {
                MetricsFormat::Json => metrics::metrics_json(
                    &server_section(shared),
                    shared.slow_ns,
                    &slow_log_copy(shared),
                ),
                MetricsFormat::Text => metrics::metrics_text(
                    &shared.counters.export(),
                    shared.slow_ns,
                    &slow_log_copy(shared),
                ),
            };
            wire::ok_text_response(&text)
        }
    }
}

/// Clone the slow log for exposition (held briefly, lock taken alone).
fn slow_log_copy(shared: &Shared) -> Vec<TraceDump> {
    lock(&shared.slow_log).iter().cloned().collect()
}

fn handle_knn(shared: &Arc<Shared>, k: usize, queries: &[Vec<f64>], trace: TraceId) -> Vec<u8> {
    if k == 0 {
        return wire::err_response("k must be at least 1");
    }
    if queries.is_empty() {
        return wire::err_response("a kNN request needs at least one query");
    }
    let prepare_start = sapla_obs::clock::now_ns();
    recorder::set_meta(trace, Meta::K, k as u64);
    let engine = shared.current_engine();
    let raws: sapla_core::Result<Vec<TimeSeries>> =
        queries.iter().map(|q| TimeSeries::new(q.clone())).collect();
    let prepared = match raws.and_then(|r| engine.prepare(&r, shared.threads)) {
        Ok(p) => p,
        Err(e) => return wire::err_response(&e.to_string()),
    };
    record_stage(trace, Stage::Prepare, prepare_start, sapla_obs::clock::now_ns());
    // Hand the prepared queries to the batcher and block on the reply.
    // Queries only depend on the reducer and `m`, both invariant across
    // reloads, so they stay valid whichever engine generation answers.
    let (tx, rx) = mpsc::channel();
    let enqueued_ns = sapla_obs::clock::now_ns();
    {
        // The flag is checked under the queue lock: the batcher only
        // exits once the flag is up *and* the queue is empty (also
        // under the lock), so a job admitted here is guaranteed an
        // answer — no request can strand in `recv` below.
        let mut queue = lock(&shared.queue);
        if shared.shutdown.load(Ordering::Acquire) {
            return wire::err_response("server is shutting down");
        }
        queue.push_back(Job { queries: prepared, k, reply: tx, trace, enqueued_ns });
        sapla_obs::gauge_max!("serve.queue.depth.hwm", queue.len() as u64);
    }
    shared.available.notify_one();
    match rx.recv() {
        Ok(Ok((per_query, batch))) => {
            wire::ok_knn_response(&per_query, batch.measured as u64, batch.candidates as u64)
        }
        Ok(Err(msg)) => wire::err_response(&msg),
        Err(_) => wire::err_response("server is shutting down"),
    }
}

fn handle_range(shared: &Arc<Shared>, epsilon: f64, query: Vec<f64>) -> Vec<u8> {
    if !(epsilon.is_finite() && epsilon >= 0.0) {
        return wire::err_response("epsilon must be finite and non-negative");
    }
    let engine = shared.current_engine();
    let answer = TimeSeries::new(query)
        .and_then(|raw| engine.prepare(std::slice::from_ref(&raw), 1))
        .and_then(|qs| match qs.first() {
            Some(q) => engine.range(q, epsilon),
            None => Err(sapla_core::Error::EmptySeries),
        });
    match answer {
        Ok(stats) => wire::ok_range_response(&stats),
        Err(e) => wire::err_response(&e.to_string()),
    }
}

fn swap_engine(shared: &Arc<Shared>, fresh: Engine) -> Vec<u8> {
    let records = fresh.len() as u64;
    *shared.engine.write().unwrap_or_else(PoisonError::into_inner) = Arc::new(fresh);
    shared.counters.reloads.fetch_add(1, Ordering::Relaxed);
    shared.counters.generation.fetch_add(1, Ordering::Relaxed);
    sapla_obs::counter!("serve.reloads");
    wire::ok_records_response(records)
}

fn handle_reload(shared: &Arc<Shared>, blob: Vec<u8>) -> Vec<u8> {
    let engine = shared.current_engine();
    if blob.is_empty() {
        if let Some(path) = &shared.index_file {
            // Backed by an on-disk snapshot: re-read the file. The file
            // carries everything (raws, reps, fully-built trees), so
            // this is the cold-start load — O(file size), and the new
            // generation's membership may differ from the old one's.
            return match Engine::from_snapshot_file(path) {
                Ok(fresh) => swap_engine(shared, fresh),
                Err(e) => wire::err_response(&e.to_string()),
            };
        }
    }
    // Otherwise an empty blob means "rebuild from your own snapshot" —
    // the round-trip exercises codec + rebuild without shipping bytes.
    let own: Vec<u8>;
    let blob: &[u8] = if blob.is_empty() {
        match engine.snapshot() {
            Ok(b) => {
                own = b.chunk().to_vec();
                &own
            }
            Err(e) => return wire::err_response(&e.to_string()),
        }
    } else {
        &blob
    };
    match engine.reload_from_snapshot(blob) {
        Ok(fresh) => swap_engine(shared, fresh),
        Err(e) => wire::err_response(&e.to_string()),
    }
}

impl Counters {
    /// Name/value pairs for the text exposition.
    fn export(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("requests", self.requests.load(Ordering::Relaxed)),
            ("batches", self.batches.load(Ordering::Relaxed)),
            ("batched_queries", self.batched_queries.load(Ordering::Relaxed)),
            ("max_batch_queries", self.max_batch_queries.load(Ordering::Relaxed)),
            ("reloads", self.reloads.load(Ordering::Relaxed)),
            ("generation", self.generation.load(Ordering::Relaxed)),
        ]
    }
}

/// The `"server"` JSON object shared by `stats` and `OP_METRICS`.
fn server_section(shared: &Shared) -> String {
    let engine = shared.current_engine();
    let c = &shared.counters;
    format!(
        concat!(
            "{{\"tree\": \"{}\", \"method\": \"{}\", \"indexed\": {}, ",
            "\"shards\": {}, \"generation\": {}, \"requests\": {}, \"batches\": {}, ",
            "\"batched_queries\": {}, \"max_batch_queries\": {}, \"reloads\": {}}}"
        ),
        engine.config().tree.name(),
        engine.method(),
        engine.len(),
        engine.shard_count(),
        c.generation.load(Ordering::Relaxed),
        c.requests.load(Ordering::Relaxed),
        c.batches.load(Ordering::Relaxed),
        c.batched_queries.load(Ordering::Relaxed),
        c.max_batch_queries.load(Ordering::Relaxed),
        c.reloads.load(Ordering::Relaxed),
    )
}

fn stats_json(shared: &Shared) -> String {
    format!(
        "{{\n  \"server\": {},\n  \"obs\": {}\n}}\n",
        server_section(shared),
        sapla_obs::Snapshot::capture().to_json().trim_end(),
    )
}

/// Drain every waiting job in one gulp, group by `k`, and answer each
/// group with a single engine call: admission batching. Exits when the
/// shutdown flag is up *and* the queue is empty, so queries accepted
/// before shutdown still get answers.
fn batch_loop(shared: &Arc<Shared>) {
    loop {
        let jobs: Vec<Job> = {
            let mut queue = lock(&shared.queue);
            loop {
                if !queue.is_empty() {
                    break queue.drain(..).collect();
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                queue = shared.available.wait(queue).unwrap_or_else(PoisonError::into_inner);
            }
        };
        run_batch(shared, jobs);
    }
}

fn run_batch(shared: &Arc<Shared>, mut jobs: Vec<Job>) {
    let total_queries: usize = jobs.iter().map(|j| j.queries.len()).sum();
    let c = &shared.counters;
    c.batches.fetch_add(1, Ordering::Relaxed);
    c.batched_queries.fetch_add(total_queries as u64, Ordering::Relaxed);
    c.max_batch_queries.fetch_max(total_queries as u64, Ordering::Relaxed);
    sapla_obs::hist!("serve.batch.jobs", jobs.len() as u64);
    sapla_obs::hist!("serve.batch.queries", total_queries as u64);
    let engine = shared.current_engine();

    // Queue wait ends for every drained job at this moment.
    let drained_ns = sapla_obs::clock::now_ns();
    for job in &jobs {
        record_stage(job.trace, Stage::Queue, job.enqueued_ns, drained_ns);
        recorder::set_meta(job.trace, Meta::BatchJobs, jobs.len() as u64);
        recorder::set_meta(job.trace, Meta::BatchQueries, total_queries as u64);
    }

    // Group coalesced jobs by k (BTreeMap: deterministic order), keep
    // FIFO order within each group.
    let mut by_k: BTreeMap<usize, Vec<Job>> = BTreeMap::new();
    for job in jobs.drain(..) {
        by_k.entry(job.k).or_default().push(job);
    }
    for (k, group) in by_k {
        let mut all: Vec<Query> = Vec::new();
        let mut counts = Vec::with_capacity(group.len());
        let mut traces = Vec::with_capacity(group.len());
        let mut replies = Vec::with_capacity(group.len());
        for mut job in group {
            counts.push(job.queries.len());
            traces.push(job.trace);
            all.append(&mut job.queries);
            replies.push(job.reply);
        }
        // Batch formation ends (and the cohort's execute begins) here;
        // every rider shares the cohort's execute interval.
        let exec_start = sapla_obs::clock::now_ns();
        for &trace in &traces {
            record_stage(trace, Stage::Batch, drained_ns, exec_start);
            recorder::set_meta(trace, Meta::CohortQueries, all.len() as u64);
        }
        let answer = engine.knn(&all, k, shared.threads);
        let exec_end = sapla_obs::clock::now_ns();
        for &trace in &traces {
            record_stage(trace, Stage::Execute, exec_start, exec_end);
        }
        match answer {
            Ok((mut per_query, batch)) => {
                // Split the flat result vector back into per-job slices
                // (front to back, same order we concatenated).
                let mut rest = per_query.drain(..);
                for ((count, reply), trace) in counts.iter().zip(replies).zip(traces) {
                    let chunk: Vec<SearchStats> = rest.by_ref().take(*count).collect();
                    // Stamp the merge before the send: the connection
                    // thread wakes on the send and starts its reply
                    // stage, which must not overlap this one.
                    record_stage(trace, Stage::Merge, exec_end, sapla_obs::clock::now_ns());
                    // A dead receiver just means the client hung up.
                    let _ = reply.send(Ok((chunk, batch)));
                }
            }
            Err(e) => {
                let msg = e.to_string();
                for reply in replies {
                    let _ = reply.send(Err(msg.clone()));
                }
            }
        }
    }
}
