//! A small blocking client for the daemon's wire protocol — used by
//! the CLI, the bench harness, and the loopback tests. One request is
//! in flight per connection at a time (the protocol is strictly
//! request/response).

use std::net::{TcpStream, ToSocketAddrs};

use crate::wire::{self, KnnResponse, MetricsFormat, RangeResponse};
use crate::{Result, ServeError};

/// A blocking connection to a running [`crate::Server`].
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to a daemon.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the connection cannot be established.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client { stream })
    }

    fn roundtrip(&mut self, request: &[u8]) -> Result<Vec<u8>> {
        wire::write_frame(&mut self.stream, request)?;
        match wire::read_frame(&mut self.stream, wire::MAX_FRAME)? {
            Some(payload) => Ok(payload),
            None => Err(ServeError::Protocol("server closed the connection".into())),
        }
    }

    /// Answer `queries` (raw series) with their `k` nearest neighbours.
    ///
    /// # Errors
    ///
    /// I/O failures, or the server's error message as
    /// [`ServeError::Protocol`].
    pub fn knn(&mut self, queries: &[Vec<f64>], k: usize) -> Result<KnnResponse> {
        let payload = self.roundtrip(&wire::encode_knn_request(queries, k))?;
        wire::decode_knn_response(&payload).map_err(ServeError::Protocol)
    }

    /// All indexed series within `epsilon` of `query`.
    ///
    /// # Errors
    ///
    /// As for [`Client::knn`].
    pub fn range(&mut self, query: &[f64], epsilon: f64) -> Result<RangeResponse> {
        let payload = self.roundtrip(&wire::encode_range_request(query, epsilon))?;
        wire::decode_range_response(&payload).map_err(ServeError::Protocol)
    }

    /// The server's stats document (JSON: a `server` section of plain
    /// counters plus the `sapla-obs` snapshot when built with obs).
    ///
    /// # Errors
    ///
    /// As for [`Client::knn`].
    pub fn stats(&mut self) -> Result<String> {
        let payload = self.roundtrip(&wire::encode_bare_request(wire::OP_STATS))?;
        let mut r = wire::check_status(&payload).map_err(ServeError::Protocol)?;
        let text = r.blob().map_err(ServeError::Protocol)?;
        let text = String::from_utf8_lossy(text).into_owned();
        r.finish().map_err(ServeError::Protocol)?;
        Ok(text)
    }

    /// The server's metrics exposition: JSON (stats extended with
    /// `latency` percentile rows and `trace` sections — recent flight
    /// recorder traces and the `--slow-ms` slow-query log) or a
    /// Prometheus-style text document.
    ///
    /// # Errors
    ///
    /// As for [`Client::knn`].
    pub fn metrics(&mut self, format: MetricsFormat) -> Result<String> {
        let payload = self.roundtrip(&wire::encode_metrics_request(format))?;
        let mut r = wire::check_status(&payload).map_err(ServeError::Protocol)?;
        let text = r.blob().map_err(ServeError::Protocol)?;
        let text = String::from_utf8_lossy(text).into_owned();
        r.finish().map_err(ServeError::Protocol)?;
        Ok(text)
    }

    /// The server's current index snapshot (a `sapla_core::codec`
    /// collection blob).
    ///
    /// # Errors
    ///
    /// As for [`Client::knn`].
    pub fn snapshot(&mut self) -> Result<Vec<u8>> {
        let payload = self.roundtrip(&wire::encode_bare_request(wire::OP_SNAPSHOT))?;
        let mut r = wire::check_status(&payload).map_err(ServeError::Protocol)?;
        let blob = r.blob().map_err(ServeError::Protocol)?.to_vec();
        r.finish().map_err(ServeError::Protocol)?;
        Ok(blob)
    }

    /// Atomically swap the served engine for one rebuilt from `blob`
    /// (pass an empty blob to round-trip the server's own snapshot).
    /// Returns the record count. In-flight queries finish on the old
    /// engine.
    ///
    /// # Errors
    ///
    /// As for [`Client::knn`]; membership changes and garbage blobs are
    /// rejected server-side.
    pub fn reload(&mut self, blob: &[u8]) -> Result<u64> {
        let payload = self.roundtrip(&wire::encode_reload_request(blob))?;
        let mut r = wire::check_status(&payload).map_err(ServeError::Protocol)?;
        let records = r.u64().map_err(ServeError::Protocol)?;
        r.finish().map_err(ServeError::Protocol)?;
        Ok(records)
    }

    /// Ask the daemon to shut down (it finishes queued queries first).
    ///
    /// # Errors
    ///
    /// As for [`Client::knn`].
    pub fn shutdown(&mut self) -> Result<()> {
        let payload = self.roundtrip(&wire::encode_bare_request(wire::OP_SHUTDOWN))?;
        let r = wire::check_status(&payload).map_err(ServeError::Protocol)?;
        r.finish().map_err(ServeError::Protocol)
    }
}
