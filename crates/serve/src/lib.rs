//! `sapla-serve` — a std-only, long-lived TCP similarity-search daemon
//! over the sharded [`sapla_index::Engine`].
//!
//! # Architecture
//!
//! ```text
//!  clients ──TCP──► accept thread ──► per-connection threads
//!                                         │  (decode frame, prepare
//!                                         │   queries, enqueue job)
//!                                         ▼
//!                        admission queue (Mutex<VecDeque> + Condvar)
//!                                         │
//!                                         ▼
//!                       batcher thread: drain *all* pending jobs,
//!                       group by k, one Engine::knn call per group
//!                       (the engine fans (query, shard) pairs over
//!                       its work-stealing pool), split the replies
//! ```
//!
//! Batching is pure admission coalescing: queries that happen to be
//! waiting together ride one [`sapla_index::Engine::knn`] call. Because
//! per-query kNN answers are independent of which batch they ride in
//! (the engine merges per query, deterministically), a batched server
//! is **bit-identical** to the single-process `knn_batch` path — the
//! loopback tests pin this.
//!
//! Reloads swap an `Arc<Engine>` inside an `RwLock`: in-flight queries
//! keep the `Arc` they started with, so a snapshot reload never drops
//! or blocks running work.
//!
//! # Wire protocol
//!
//! Little-endian, length-prefixed frames on a plain TCP stream:
//!
//! ```text
//! frame    := len:u32 payload[len]                  (len ≤ 256 MiB)
//! request  := opcode:u8 body
//!   KNN      (0x01) := k:u32 nq:u32 series{nq}      series := n:u32 f64{n}
//!   RANGE    (0x02) := epsilon:f64 series
//!   STATS    (0x03) := —
//!   SNAPSHOT (0x04) := —
//!   RELOAD   (0x05) := blen:u32 blob[blen]          (blen = 0 ⇒ re-read the
//!                                                    configured index file,
//!                                                    else own snapshot)
//!   SHUTDOWN (0x06) := —
//!   METRICS  (0x07) := format:u8                    (0 = JSON, 1 = text)
//! response := status:u8 body
//!   status 1 (error) := mlen:u32 utf8[mlen]
//!   KNN ok   := nq:u32 { n:u32 (id:u64 dist:f64){n} measured:u64 }{nq}
//!               batch_measured:u64 batch_candidates:u64
//!   RANGE ok := n:u32 (id:u64 dist:f64){n} measured:u64
//!   STATS ok := jlen:u32 utf8[jlen]                 (JSON document)
//!   SNAPSHOT ok := blen:u32 blob[blen]              (codec collection)
//!   RELOAD ok   := records:u64
//!   SHUTDOWN ok := —
//!   METRICS ok  := tlen:u32 utf8[tlen]              (JSON or Prometheus-
//!                                                    style text document)
//! ```
//!
//! Malformed frames, non-finite samples, or engine failures produce an
//! error *response* on that request; the connection stays usable. Only
//! a frame the peer never completes (socket death) ends a connection.

mod client;
mod metrics;
mod server;
mod wire;

pub use client::Client;
pub use server::{Server, ServerConfig};
pub use wire::{KnnResponse, KnnResult, MetricsFormat, RangeResponse, MAX_FRAME};

/// Failures surfaced to embedders and clients of the daemon.
#[derive(Debug)]
pub enum ServeError {
    /// Socket-level failure (bind, connect, read, write).
    Io(std::io::Error),
    /// Engine or codec failure while building the served index.
    Core(sapla_core::Error),
    /// A protocol violation, or an error response from the server
    /// (carrying the server's message).
    Protocol(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::Core(e) => write!(f, "engine error: {e}"),
            ServeError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Core(e) => Some(e),
            ServeError::Protocol(_) => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<sapla_core::Error> for ServeError {
    fn from(e: sapla_core::Error) -> Self {
        ServeError::Core(e)
    }
}

/// Crate-local result alias.
pub type Result<T> = std::result::Result<T, ServeError>;
