//! Frame layer and request/response codec for the daemon (see the
//! crate docs for the byte-level grammar). Parsing is fully checked:
//! any malformed payload becomes an `Err(String)` — never a panic —
//! which the server turns into an error response on that request.

use std::io::{ErrorKind, Read, Write};

use sapla_index::SearchStats;

/// Hard ceiling on a single frame (request or response): 256 MiB.
pub const MAX_FRAME: usize = 1 << 28;

pub(crate) const OP_KNN: u8 = 0x01;
pub(crate) const OP_RANGE: u8 = 0x02;
pub(crate) const OP_STATS: u8 = 0x03;
pub(crate) const OP_SNAPSHOT: u8 = 0x04;
pub(crate) const OP_RELOAD: u8 = 0x05;
pub(crate) const OP_SHUTDOWN: u8 = 0x06;
pub(crate) const OP_METRICS: u8 = 0x07;

const STATUS_OK: u8 = 0;
const STATUS_ERR: u8 = 1;

/// Exposition format selector carried in an `OP_METRICS` request body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum MetricsFormat {
    /// The hand-rolled JSON document (stats + `latency` + `trace`).
    Json = 0,
    /// Prometheus-style text exposition.
    Text = 1,
}

impl MetricsFormat {
    fn from_wire(b: u8) -> Result<MetricsFormat, String> {
        match b {
            0 => Ok(MetricsFormat::Json),
            1 => Ok(MetricsFormat::Text),
            other => Err(format!("unknown metrics format {other}")),
        }
    }
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Read one length-prefixed frame. `Ok(None)` is a clean end of stream
/// (the peer closed between frames); any other short read is an error.
pub(crate) fn read_frame(stream: &mut impl Read, max: usize) -> std::io::Result<Option<Vec<u8>>> {
    let mut len4 = [0u8; 4];
    match stream.read_exact(&mut len4) {
        Ok(()) => {}
        Err(e) if e.kind() == ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len4) as usize;
    if len > max {
        return Err(std::io::Error::new(
            ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {max}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Write one length-prefixed frame.
pub(crate) fn write_frame(stream: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(std::io::Error::new(
            ErrorKind::InvalidData,
            format!("refusing to send a {}-byte frame (cap {MAX_FRAME})", payload.len()),
        ));
    }
    let len = u32::try_from(payload.len())
        .map_err(|_| std::io::Error::new(ErrorKind::InvalidData, "frame length exceeds u32"))?;
    stream.write_all(&len.to_le_bytes())?;
    stream.write_all(payload)?;
    stream.flush()
}

/// Append a `u32` little-endian length/count prefix. Wire counts are
/// `u32`; a value that does not fit saturates, which yields a payload
/// the `MAX_FRAME` cap rejects at `write_frame` time instead of a
/// silently wrapped length reaching the peer.
fn put_len(out: &mut Vec<u8>, n: usize) {
    out.extend_from_slice(&u32::try_from(n).unwrap_or(u32::MAX).to_le_bytes());
}

// ---------------------------------------------------------------------------
// Checked payload reader
// ---------------------------------------------------------------------------

/// Cursor over a frame payload with bounds-checked reads.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.buf.len() < n {
            return Err(format!("truncated payload: need {n} more bytes, have {}", self.buf.len()));
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, String> {
        let b = self.take(4)?;
        let mut a = [0u8; 4];
        a.copy_from_slice(b);
        Ok(u32::from_le_bytes(a))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, String> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A `len:u32`-prefixed byte string.
    pub(crate) fn blob(&mut self) -> Result<&'a [u8], String> {
        let n = self.u32()? as usize;
        self.take(n)
    }

    /// Reject trailing garbage so protocol drift fails loudly.
    pub(crate) fn finish(&self) -> Result<(), String> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(format!("{} trailing bytes after payload", self.buf.len()))
        }
    }
}

fn read_series(r: &mut Reader<'_>) -> Result<Vec<f64>, String> {
    let n = r.u32()? as usize;
    // 8 bytes per sample are still in the frame, so `n` is already
    // bounded by MAX_FRAME / 8 — no separate cap needed.
    let mut v = Vec::with_capacity(n.min(r.buf.len() / 8 + 1));
    for _ in 0..n {
        v.push(r.f64()?);
    }
    Ok(v)
}

fn put_series(out: &mut Vec<u8>, series: &[f64]) {
    put_len(out, series.len());
    for &x in series {
        out.extend_from_slice(&x.to_bits().to_le_bytes());
    }
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// A decoded client request.
pub(crate) enum Request {
    Knn { k: usize, queries: Vec<Vec<f64>> },
    Range { epsilon: f64, query: Vec<f64> },
    Stats,
    Snapshot,
    Reload { blob: Vec<u8> },
    Shutdown,
    Metrics { format: MetricsFormat },
}

pub(crate) fn decode_request(payload: &[u8]) -> Result<Request, String> {
    let mut r = Reader::new(payload);
    let op = r.u8()?;
    let req = match op {
        OP_KNN => {
            let k = r.u32()? as usize;
            let nq = r.u32()? as usize;
            if nq > payload.len() {
                return Err(format!("query count {nq} exceeds the payload size"));
            }
            let mut queries = Vec::with_capacity(nq);
            for _ in 0..nq {
                queries.push(read_series(&mut r)?);
            }
            Request::Knn { k, queries }
        }
        OP_RANGE => {
            let epsilon = r.f64()?;
            let query = read_series(&mut r)?;
            Request::Range { epsilon, query }
        }
        OP_STATS => Request::Stats,
        OP_SNAPSHOT => Request::Snapshot,
        OP_RELOAD => Request::Reload { blob: r.blob()?.to_vec() },
        OP_SHUTDOWN => Request::Shutdown,
        OP_METRICS => Request::Metrics { format: MetricsFormat::from_wire(r.u8()?)? },
        other => return Err(format!("unknown opcode 0x{other:02x}")),
    };
    r.finish()?;
    Ok(req)
}

pub(crate) fn encode_knn_request(queries: &[Vec<f64>], k: usize) -> Vec<u8> {
    let samples: usize = queries.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(9 + 4 * queries.len() + 8 * samples);
    out.push(OP_KNN);
    put_len(&mut out, k);
    put_len(&mut out, queries.len());
    for q in queries {
        put_series(&mut out, q);
    }
    out
}

pub(crate) fn encode_range_request(query: &[f64], epsilon: f64) -> Vec<u8> {
    let mut out = Vec::with_capacity(13 + 8 * query.len());
    out.push(OP_RANGE);
    out.extend_from_slice(&epsilon.to_bits().to_le_bytes());
    put_series(&mut out, query);
    out
}

pub(crate) fn encode_bare_request(op: u8) -> Vec<u8> {
    vec![op]
}

pub(crate) fn encode_metrics_request(format: MetricsFormat) -> Vec<u8> {
    // audit: cast_ok — MetricsFormat is a fieldless enum with variants 0 and 1.
    vec![OP_METRICS, format as u8]
}

pub(crate) fn encode_reload_request(blob: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(5 + blob.len());
    out.push(OP_RELOAD);
    put_len(&mut out, blob.len());
    out.extend_from_slice(blob);
    out
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// One query's slice of a kNN response.
#[derive(Debug, Clone, PartialEq)]
pub struct KnnResult {
    /// `(global id, exact distance)` pairs, ascending by
    /// `(distance, id)`.
    pub hits: Vec<(u64, f64)>,
    /// Exact distance computations this query cost.
    pub measured: u64,
}

/// A whole kNN response.
#[derive(Debug, Clone, PartialEq)]
pub struct KnnResponse {
    /// Per-query results, in request order.
    pub per_query: Vec<KnnResult>,
    /// Exact distance computations over the *server-side batch* this
    /// request rode in (admission coalescing may include concurrent
    /// requests' queries).
    pub batch_measured: u64,
    /// `queries × indexed series` for that server-side batch.
    pub batch_candidates: u64,
}

/// A range-query response.
#[derive(Debug, Clone, PartialEq)]
pub struct RangeResponse {
    /// `(global id, exact distance)` pairs within epsilon, ascending by
    /// `(distance, id)`.
    pub hits: Vec<(u64, f64)>,
    /// Exact distance computations performed.
    pub measured: u64,
}

pub(crate) fn err_response(msg: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(5 + msg.len());
    out.push(STATUS_ERR);
    put_len(&mut out, msg.len());
    out.extend_from_slice(msg.as_bytes());
    out
}

fn put_hits(out: &mut Vec<u8>, stats: &SearchStats) {
    put_len(out, stats.retrieved.len());
    for (&id, &d) in stats.retrieved.iter().zip(&stats.distances) {
        out.extend_from_slice(&(id as u64).to_le_bytes());
        out.extend_from_slice(&d.to_bits().to_le_bytes());
    }
    out.extend_from_slice(&(stats.measured as u64).to_le_bytes());
}

pub(crate) fn ok_knn_response(
    per_query: &[SearchStats],
    batch_measured: u64,
    batch_candidates: u64,
) -> Vec<u8> {
    let hits: usize = per_query.iter().map(|s| s.retrieved.len()).sum();
    let mut out = Vec::with_capacity(21 + 12 * per_query.len() + 16 * hits);
    out.push(STATUS_OK);
    put_len(&mut out, per_query.len());
    for stats in per_query {
        put_hits(&mut out, stats);
    }
    out.extend_from_slice(&batch_measured.to_le_bytes());
    out.extend_from_slice(&batch_candidates.to_le_bytes());
    out
}

pub(crate) fn ok_range_response(stats: &SearchStats) -> Vec<u8> {
    let mut out = Vec::with_capacity(13 + 16 * stats.retrieved.len());
    out.push(STATUS_OK);
    put_hits(&mut out, stats);
    out
}

pub(crate) fn ok_text_response(text: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(5 + text.len());
    out.push(STATUS_OK);
    put_len(&mut out, text.len());
    out.extend_from_slice(text.as_bytes());
    out
}

pub(crate) fn ok_blob_response(blob: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(5 + blob.len());
    out.push(STATUS_OK);
    put_len(&mut out, blob.len());
    out.extend_from_slice(blob);
    out
}

pub(crate) fn ok_records_response(records: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(9);
    out.push(STATUS_OK);
    out.extend_from_slice(&records.to_le_bytes());
    out
}

pub(crate) fn ok_empty_response() -> Vec<u8> {
    vec![STATUS_OK]
}

/// Client side: peel the status byte; an error status yields the
/// server's message as `Err`.
pub(crate) fn check_status<'a>(payload: &'a [u8]) -> Result<Reader<'a>, String> {
    let mut r = Reader::new(payload);
    match r.u8()? {
        STATUS_OK => Ok(r),
        STATUS_ERR => {
            let msg = r.blob()?;
            Err(String::from_utf8_lossy(msg).into_owned())
        }
        other => Err(format!("unknown response status {other}")),
    }
}

pub(crate) fn decode_knn_response(payload: &[u8]) -> Result<KnnResponse, String> {
    let mut r = check_status(payload)?;
    let nq = r.u32()? as usize;
    let mut per_query = Vec::with_capacity(nq.min(payload.len() / 12 + 1));
    for _ in 0..nq {
        let n = r.u32()? as usize;
        let mut hits = Vec::with_capacity(n.min(payload.len() / 16 + 1));
        for _ in 0..n {
            let id = r.u64()?;
            let d = r.f64()?;
            hits.push((id, d));
        }
        let measured = r.u64()?;
        per_query.push(KnnResult { hits, measured });
    }
    let batch_measured = r.u64()?;
    let batch_candidates = r.u64()?;
    r.finish()?;
    Ok(KnnResponse { per_query, batch_measured, batch_candidates })
}

pub(crate) fn decode_range_response(payload: &[u8]) -> Result<RangeResponse, String> {
    let mut r = check_status(payload)?;
    let n = r.u32()? as usize;
    let mut hits = Vec::with_capacity(n.min(payload.len() / 16 + 1));
    for _ in 0..n {
        let id = r.u64()?;
        let d = r.f64()?;
        hits.push((id, d));
    }
    let measured = r.u64()?;
    r.finish()?;
    Ok(RangeResponse { hits, measured })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_over_an_in_memory_pipe() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor: &[u8] = &buf;
        assert_eq!(read_frame(&mut cursor, MAX_FRAME).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor, MAX_FRAME).unwrap().unwrap(), b"");
        assert!(read_frame(&mut cursor, MAX_FRAME).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn oversized_and_truncated_frames_are_errors() {
        let huge = (MAX_FRAME as u32 + 1).to_le_bytes();
        let mut cursor: &[u8] = &huge;
        assert!(read_frame(&mut cursor, MAX_FRAME).is_err());

        let mut buf = Vec::new();
        write_frame(&mut buf, b"abcdef").unwrap();
        buf.truncate(buf.len() - 2); // kill the tail mid-payload
        let mut cursor: &[u8] = &buf;
        assert!(read_frame(&mut cursor, MAX_FRAME).is_err(), "mid-frame EOF is not clean");
    }

    #[test]
    fn knn_request_roundtrips() {
        let queries = vec![vec![1.0, -2.5, 3.25], vec![0.0; 5]];
        let payload = encode_knn_request(&queries, 7);
        match decode_request(&payload).unwrap() {
            Request::Knn { k, queries: got } => {
                assert_eq!(k, 7);
                assert_eq!(got, queries);
            }
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn range_and_control_requests_roundtrip() {
        let payload = encode_range_request(&[1.5, 2.5], 0.75);
        match decode_request(&payload).unwrap() {
            Request::Range { epsilon, query } => {
                assert_eq!(epsilon.to_bits(), 0.75f64.to_bits());
                assert_eq!(query, vec![1.5, 2.5]);
            }
            _ => panic!("wrong variant"),
        }
        assert!(matches!(decode_request(&encode_bare_request(OP_STATS)), Ok(Request::Stats)));
        assert!(matches!(decode_request(&encode_bare_request(OP_SNAPSHOT)), Ok(Request::Snapshot)));
        assert!(matches!(decode_request(&encode_bare_request(OP_SHUTDOWN)), Ok(Request::Shutdown)));
        match decode_request(&encode_reload_request(b"blob!")).unwrap() {
            Request::Reload { blob } => assert_eq!(blob, b"blob!"),
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn metrics_requests_roundtrip_and_malformed_ones_error() {
        for format in [MetricsFormat::Json, MetricsFormat::Text] {
            match decode_request(&encode_metrics_request(format)) {
                Ok(Request::Metrics { format: got }) => assert_eq!(got, format),
                _ => panic!("wrong variant for {format:?}"),
            }
        }
        // Missing format byte, unknown format, trailing garbage.
        assert!(decode_request(&[OP_METRICS]).is_err());
        assert!(decode_request(&[OP_METRICS, 9]).is_err());
        assert!(decode_request(&[OP_METRICS, 0, 0]).is_err());
    }

    #[test]
    fn malformed_requests_error_and_never_panic() {
        assert!(decode_request(&[]).is_err(), "empty payload");
        assert!(decode_request(&[0xEE]).is_err(), "unknown opcode");
        assert!(decode_request(&[OP_KNN, 1, 0]).is_err(), "truncated header");
        // Query count larger than the payload could ever hold.
        let mut p = vec![OP_KNN];
        p.extend_from_slice(&5u32.to_le_bytes());
        p.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_request(&p).is_err());
        // Trailing garbage after a well-formed request.
        let mut p = encode_bare_request(OP_STATS);
        p.push(0);
        assert!(decode_request(&p).is_err());
    }

    #[test]
    fn knn_response_roundtrips_bitwise() {
        let per = vec![
            SearchStats {
                retrieved: vec![3, 1, 7],
                distances: vec![0.5, 1.5, f64::MAX],
                measured: 9,
                total: 40,
            },
            SearchStats { retrieved: vec![], distances: vec![], measured: 0, total: 40 },
        ];
        let payload = ok_knn_response(&per, 123, 80);
        let got = decode_knn_response(&payload).unwrap();
        assert_eq!(got.per_query.len(), 2);
        assert_eq!(got.per_query[0].hits[0], (3, 0.5));
        assert_eq!(got.per_query[0].hits[2].1.to_bits(), f64::MAX.to_bits());
        assert_eq!(got.per_query[0].measured, 9);
        assert!(got.per_query[1].hits.is_empty());
        assert_eq!(got.batch_measured, 123);
        assert_eq!(got.batch_candidates, 80);
    }

    #[test]
    fn error_responses_carry_the_message() {
        let payload = err_response("engine exploded");
        assert_eq!(decode_knn_response(&payload).unwrap_err(), "engine exploded");
        assert_eq!(decode_range_response(&payload).unwrap_err(), "engine exploded");
    }

    #[test]
    fn range_response_roundtrips() {
        let stats = SearchStats {
            retrieved: vec![4, 9],
            distances: vec![0.25, 0.75],
            measured: 6,
            total: 20,
        };
        let got = decode_range_response(&ok_range_response(&stats)).unwrap();
        assert_eq!(got.hits, vec![(4, 0.25), (9, 0.75)]);
        assert_eq!(got.measured, 6);
    }
}
