//! PLA — equal-length Piecewise Linear Approximation
//! (Chen et al., VLDB 2007; Eq. 1 of the SAPLA paper).
//!
//! The series is split into `N = M/2` equal-length windows and each window
//! is replaced by its least-squares line `⟨a_i, b_i⟩`. `O(n)` total.

use sapla_core::{LinearSegment, PiecewiseLinear, Representation, Result, TimeSeries};

use crate::common::{equal_windows, Reducer};

/// The PLA reducer.
#[derive(Debug, Clone, Copy, Default)]
pub struct Pla;

impl Pla {
    /// Create a PLA reducer.
    pub fn new() -> Self {
        Pla
    }

    /// Reduce to exactly `k` equal-length linear segments.
    ///
    /// # Errors
    ///
    /// [`sapla_core::Error::InvalidSegmentCount`] when `k` exceeds the
    /// series length or is zero.
    pub fn reduce_to_segments(&self, series: &TimeSeries, k: usize) -> Result<PiecewiseLinear> {
        let n = series.len();
        if k == 0 || k > n {
            return Err(sapla_core::Error::InvalidSegmentCount { segments: k, len: n });
        }
        let sums = series.prefix_sums();
        let mut segs = Vec::with_capacity(k);
        for (start, end) in equal_windows(n, k) {
            let fit = sapla_core::LineFit::over_window(&sums, start, end)?;
            segs.push(LinearSegment { a: fit.a, b: fit.b, r: end - 1 });
        }
        PiecewiseLinear::new(segs)
    }
}

impl Reducer for Pla {
    fn name(&self) -> &'static str {
        "PLA"
    }

    fn coeffs_per_segment(&self) -> usize {
        2 // a_i, b_i — equal-length, so no endpoint coefficient (Table 1)
    }

    fn reduce(&self, series: &TimeSeries, m: usize) -> Result<Representation> {
        let k = self.segments_for(m)?;
        Ok(Representation::Linear(self.reduce_to_segments(series, k)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(v: &[f64]) -> TimeSeries {
        TimeSeries::new(v.to_vec()).unwrap()
    }

    #[test]
    fn windows_are_balanced() {
        assert_eq!(equal_windows(10, 3), vec![(0, 3), (3, 6), (6, 10)]);
        assert_eq!(equal_windows(8, 4), vec![(0, 2), (2, 4), (4, 6), (6, 8)]);
        let w = equal_windows(1024, 6);
        assert_eq!(w.len(), 6);
        assert_eq!(w.last().unwrap().1, 1024);
        for (s, e) in &w {
            let l = e - s;
            assert!(l == 170 || l == 171);
        }
    }

    #[test]
    fn exact_line_has_zero_deviation() {
        let v: Vec<f64> = (0..20).map(|t| 1.5 * t as f64 + 2.0).collect();
        let s = ts(&v);
        let rep = Pla.reduce(&s, 8).unwrap();
        assert!(Pla.max_deviation(&s, &rep).unwrap() < 1e-9);
    }

    #[test]
    fn budget_maps_to_half_as_many_segments() {
        let s = ts(&(0..24).map(|t| t as f64).collect::<Vec<_>>());
        let rep = Pla.reduce(&s, 12).unwrap();
        assert_eq!(rep.num_segments(), 6);
        assert!(Pla.reduce(&s, 13).is_err()); // not a multiple of 2
        assert!(Pla.reduce(&s, 0).is_err());
    }

    #[test]
    fn fig1_example_value() {
        // Fig. 1 compares the *sum of per-segment max deviations*: PLA
        // (N = 6, M = 12) scores ≈ 19.4 there while SAPLA (N = 4) scores
        // ≈ 9.3. On the printed series our implementations give
        // PLA ≈ 18.0 vs SAPLA ≈ 10.4 — same ordering, same rough ratio.
        let fig1 = ts(&[
            7.0, 8.0, 20.0, 15.0, 18.0, 8.0, 8.0, 15.0, 10.0, 1.0, 4.0, 3.0, 3.0, 5.0, 4.0, 9.0,
            2.0, 9.0, 10.0, 10.0,
        ]);
        let pla = Pla.reduce_to_segments(&fig1, 6).unwrap();
        let sapla_rep = crate::SaplaReducer::new().reduce(&fig1, 12).unwrap();
        let sapla = sapla_rep.as_linear().unwrap();
        let sum =
            |r: &PiecewiseLinear| -> f64 { r.segment_deviations(&fig1).unwrap().iter().sum() };
        let (s_pla, s_sapla) = (sum(&pla), sum(sapla));
        assert!(s_sapla < s_pla, "SAPLA sum-of-deviations ({s_sapla}) should beat PLA ({s_pla})");
        assert!(s_pla > 15.0 && s_pla < 22.0, "PLA sum {s_pla} out of Fig.1 band");
    }

    #[test]
    fn single_segment_is_global_fit() {
        let v = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0];
        let s = ts(&v);
        let rep = Pla.reduce_to_segments(&s, 1).unwrap();
        let direct = sapla_core::LineFit::over_slice(&v);
        let seg = rep.segments()[0];
        assert!((seg.a - direct.a).abs() < 1e-12);
        assert!((seg.b - direct.b).abs() < 1e-12);
    }
}
