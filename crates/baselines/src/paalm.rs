//! PAALM — PAA with Lagrangian-multiplier pattern smoothing
//! (after Rezvani, Barnaghi & Enshaeifar, TKDE 2019).
//!
//! The SAPLA paper uses PAALM as the "patterns, not max deviation"
//! comparator: it trades per-window fidelity for continuity between
//! neighbouring segment values. Our implementation (see DESIGN.md for the
//! substitution note) minimises
//!
//! ```text
//!   Σ_i Σ_{t ∈ w_i} (c_t − v_i)²  +  λ Σ_{i≥1} (v_i − v_{i−1})²
//! ```
//!
//! over the segment values `v_i` — a Lagrangian smoothing of PAA solved
//! exactly by one tridiagonal (Thomas) solve, `O(n)` overall. With `λ = 0`
//! it degenerates to PAA; the default `λ = n/N` (one window's worth of
//! weight) produces the visibly smoothed, worse-max-deviation behaviour
//! the paper reports in Figs. 12–13.

use sapla_core::{ConstantSegment, PiecewiseConstant, Representation, Result, TimeSeries};

use crate::common::{equal_windows, Reducer};

/// The PAALM reducer.
#[derive(Debug, Clone, Copy, Default)]
pub struct Paalm {
    /// Smoothing weight `λ`; `None` selects the default `n / N`.
    pub lambda: Option<f64>,
}

impl Paalm {
    /// PAALM with an explicit smoothing weight.
    pub fn with_lambda(lambda: f64) -> Self {
        Paalm { lambda: Some(lambda) }
    }

    /// Reduce to exactly `k` smoothed equal-length constant segments.
    ///
    /// # Errors
    ///
    /// [`sapla_core::Error::InvalidSegmentCount`] when `k` is zero or
    /// exceeds the series length.
    pub fn reduce_to_segments(&self, series: &TimeSeries, k: usize) -> Result<PiecewiseConstant> {
        let n = series.len();
        if k == 0 || k > n {
            return Err(sapla_core::Error::InvalidSegmentCount { segments: k, len: n });
        }
        let lambda = self.lambda.unwrap_or(n as f64 / k as f64).max(0.0);
        let sums = series.prefix_sums();
        let windows = equal_windows(n, k);

        // Normal equations: for each i,
        //   (l_i + λ·deg_i)·v_i − λ·v_{i−1} − λ·v_{i+1} = l_i·mean_i
        // where deg_i counts the smoothness terms touching v_i (1 at the
        // ends, 2 in the middle). Tridiagonal; solve with the Thomas
        // algorithm.
        let mut diag = Vec::with_capacity(k);
        let mut rhs = Vec::with_capacity(k);
        for (i, &(s, e)) in windows.iter().enumerate() {
            let l = (e - s) as f64;
            let deg = if k == 1 {
                0.0
            } else if i == 0 || i == k - 1 {
                1.0
            } else {
                2.0
            };
            diag.push(l + lambda * deg);
            rhs.push(sums.sum(s, e));
        }
        let off = -lambda;

        // Thomas forward sweep.
        let mut c_prime = vec![0.0; k];
        let mut d_prime = vec![0.0; k];
        c_prime[0] = off / diag[0];
        d_prime[0] = rhs[0] / diag[0];
        for i in 1..k {
            let denom = diag[i] - off * c_prime[i - 1];
            c_prime[i] = off / denom;
            d_prime[i] = (rhs[i] - off * d_prime[i - 1]) / denom;
        }
        // Back substitution.
        let mut v = vec![0.0; k];
        v[k - 1] = d_prime[k - 1];
        for i in (0..k - 1).rev() {
            v[i] = d_prime[i] - c_prime[i] * v[i + 1];
        }

        let segs =
            windows.iter().zip(v).map(|(&(_, e), v)| ConstantSegment { v, r: e - 1 }).collect();
        PiecewiseConstant::new(segs)
    }
}

impl Reducer for Paalm {
    fn name(&self) -> &'static str {
        "PAALM"
    }

    fn coeffs_per_segment(&self) -> usize {
        1
    }

    fn reduce(&self, series: &TimeSeries, m: usize) -> Result<Representation> {
        let k = self.segments_for(m)?;
        Ok(Representation::Constant(self.reduce_to_segments(series, k)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Paa;

    fn ts(v: &[f64]) -> TimeSeries {
        TimeSeries::new(v.to_vec()).unwrap()
    }

    fn sq_series() -> TimeSeries {
        ts(&(0..32).map(|t| if (t / 8) % 2 == 0 { 0.0 } else { 10.0 }).collect::<Vec<_>>())
    }

    #[test]
    fn lambda_zero_equals_paa() {
        let s = sq_series();
        let paalm = Paalm::with_lambda(0.0).reduce_to_segments(&s, 4).unwrap();
        let paa = Paa.reduce_to_segments(&s, 4).unwrap();
        for (a, b) in paalm.segments().iter().zip(paa.segments()) {
            assert!((a.v - b.v).abs() < 1e-10);
            assert_eq!(a.r, b.r);
        }
    }

    #[test]
    fn smoothing_pulls_neighbours_together() {
        let s = sq_series();
        let paa = Paa.reduce_to_segments(&s, 4).unwrap();
        let paalm = Paalm::default().reduce_to_segments(&s, 4).unwrap();
        let spread = |r: &PiecewiseConstant| -> f64 {
            r.segments().windows(2).map(|w| (w[1].v - w[0].v).abs()).sum()
        };
        assert!(spread(&paalm) < spread(&paa), "smoothing must shrink jumps");
    }

    #[test]
    fn smoothing_worsens_max_deviation() {
        // The paper's point: PAALM has the worst max deviation of the
        // evaluated field.
        let s = sq_series();
        let paa = Paa.reduce(&s, 4).unwrap();
        let paalm = Paalm::default().reduce(&s, 4).unwrap();
        let d_paa = Paa.max_deviation(&s, &paa).unwrap();
        let d_paalm = Paalm::default().max_deviation(&s, &paalm).unwrap();
        assert!(d_paalm > d_paa);
    }

    #[test]
    fn value_mass_is_preserved_in_the_large_lambda_limit() {
        // As λ → ∞ all v_i converge to the global mean.
        let s = ts(&[0.0, 4.0, 8.0, 12.0]);
        let r = Paalm::with_lambda(1e9).reduce_to_segments(&s, 4).unwrap();
        for seg in r.segments() {
            assert!((seg.v - 6.0).abs() < 1e-3, "v={}", seg.v);
        }
    }

    #[test]
    fn single_segment_is_global_mean() {
        let s = ts(&[1.0, 2.0, 3.0]);
        let r = Paalm::default().reduce_to_segments(&s, 1).unwrap();
        assert!((r.segments()[0].v - 2.0).abs() < 1e-12);
    }
}
