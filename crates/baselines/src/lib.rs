//! # sapla-baselines
//!
//! From-scratch implementations of every dimensionality reduction method
//! the SAPLA paper (EDBT 2022) compares against, behind a uniform
//! [`Reducer`] trait:
//!
//! | Method | Segment size | Coefficients / segment | Time |
//! |--------|--------------|------------------------|------|
//! | [`SaplaReducer`] | adaptive | `a_i, b_i, r_i` (3) | `O(n(N + log n))` |
//! | [`Apla`]  | adaptive | `a_i, b_i, r_i` (3) | `O(N n²)` |
//! | [`Apca`]  | adaptive | `v_i, r_i` (2)      | `O(n log n)` |
//! | [`Pla`]   | equal    | `a_i, b_i` (2)      | `O(n)` |
//! | [`Paa`]   | equal    | `v_i` (1)           | `O(n)` |
//! | [`Paalm`] | equal    | `v_i` (1)           | `O(n)` |
//! | [`Cheby`] | —        | `che_i` (1)         | `O(N n)` |
//! | [`Sax`]   | equal    | symbol (1)          | `O(n)` |
//!
//! All methods take the *same* coefficient budget `M` (Table 1 of the
//! paper) so comparisons are fair: adaptive linear methods spend three
//! coefficients per segment (`N = M/3`), constant/linear equal-length
//! methods two (`N = M/2`) or one (`N = M`).

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod apca;
pub mod apla;
pub mod batch;
pub mod cheby;
pub mod common;
pub mod haar;
pub mod paa;
pub mod paalm;
pub mod pla;
pub mod sax;

pub use apca::Apca;
pub use apla::Apla;
pub use batch::{reduce_batch, reduce_batch_parallel};
pub use cheby::Cheby;
pub use common::{all_reducers, ReduceScratch, Reducer, SaplaReducer};
pub use paa::Paa;
pub use paalm::Paalm;
pub use pla::Pla;
pub use sax::Sax;
