//! CHEBY — polynomial-coefficient dimensionality reduction
//! (after Cai & Ng, SIGMOD 2004).
//!
//! Cai & Ng project onto continuous Chebyshev polynomials after interval
//! interpolation; we project onto the **orthonormal discrete polynomial
//! basis** over the sample grid (the Gram / discrete-Chebyshev
//! polynomials), built with the numerically stable Stieltjes three-term
//! recurrence. Same model class (degree-`N−1` polynomial approximation,
//! one coefficient per basis function), and because the basis is
//! orthonormal the coefficient-space Euclidean distance lower-bounds the
//! series Euclidean distance exactly (Parseval) — the property the index
//! needs. See DESIGN.md for the substitution note. `O(N n)`.
//!
//! The paper observes CHEBY degrades past `N > 25` ("dimensionality
//! curse"); the same effect appears here because high-degree polynomial
//! terms chase noise.

use sapla_core::{Error, PolyCoeffs, Representation, Result, TimeSeries};

use crate::common::Reducer;

/// The CHEBY reducer.
#[derive(Debug, Clone, Copy, Default)]
pub struct Cheby;

/// An orthonormal polynomial basis over `n` equally spaced sample points.
#[derive(Debug, Clone)]
pub struct PolyBasis {
    n: usize,
    /// `vectors[k]` is the degree-`k` orthonormal basis vector (length `n`).
    vectors: Vec<Vec<f64>>,
}

impl PolyBasis {
    /// Build the first `k` orthonormal polynomial basis vectors over `n`
    /// points via the Stieltjes three-term recurrence
    /// `p_{j+1}(t) = (t − a_j)·p_j(t) − b_j·p_{j−1}(t)`, normalised at each
    /// step.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidCoefficientCount`] if `k` is zero or exceeds `n`.
    pub fn new(n: usize, k: usize) -> Result<Self> {
        if k == 0 || k > n {
            return Err(Error::InvalidCoefficientCount {
                requested: k,
                reason: "polynomial basis size must be in 1..=n",
            });
        }
        let mut vectors: Vec<Vec<f64>> = Vec::with_capacity(k);
        // p_0 = 1/√n.
        vectors.push(vec![1.0 / (n as f64).sqrt(); n]);
        if k > 1 {
            // Centred grid keeps the recurrence well conditioned.
            let ts: Vec<f64> = (0..n).map(|t| t as f64 - (n as f64 - 1.0) / 2.0).collect();
            for j in 1..k {
                let prev = &vectors[j - 1];
                // q = t·p_{j−1}
                let mut q: Vec<f64> = ts.iter().zip(prev).map(|(&t, &p)| t * p).collect();
                // Orthogonalise against p_{j−1} and p_{j−2} (exact in real
                // arithmetic); one extra full re-orthogonalisation pass
                // keeps high degrees clean in floating point.
                for back in 1..=2.min(j) {
                    let basis = &vectors[j - back];
                    let dot: f64 = q.iter().zip(basis).map(|(a, b)| a * b).sum();
                    for (x, b) in q.iter_mut().zip(basis) {
                        *x -= dot * b;
                    }
                }
                for basis in &vectors {
                    let dot: f64 = q.iter().zip(basis).map(|(a, b)| a * b).sum();
                    if dot.abs() > 1e-12 {
                        for (x, b) in q.iter_mut().zip(basis) {
                            *x -= dot * b;
                        }
                    }
                }
                let norm: f64 = q.iter().map(|x| x * x).sum::<f64>().sqrt();
                if norm <= f64::EPSILON {
                    return Err(Error::InvalidCoefficientCount {
                        requested: k,
                        reason: "basis degenerates (k too large for n)",
                    });
                }
                for x in &mut q {
                    *x /= norm;
                }
                vectors.push(q);
            }
        }
        Ok(PolyBasis { n, vectors })
    }

    /// Number of sample points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` iff the basis covers no points (never, for a constructed basis).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of basis vectors.
    pub fn size(&self) -> usize {
        self.vectors.len()
    }

    /// Project a series onto the basis: `coeffs[k] = ⟨series, p_k⟩`.
    pub fn project(&self, values: &[f64]) -> Vec<f64> {
        debug_assert_eq!(values.len(), self.n);
        self.vectors.iter().map(|p| p.iter().zip(values).map(|(b, v)| b * v).sum()).collect()
    }

    /// Synthesise a series from coefficients.
    pub fn synthesize(&self, coeffs: &[f64]) -> Vec<f64> {
        debug_assert!(coeffs.len() <= self.vectors.len());
        let mut out = vec![0.0; self.n];
        for (c, p) in coeffs.iter().zip(&self.vectors) {
            for (o, b) in out.iter_mut().zip(p) {
                *o += c * b;
            }
        }
        out
    }
}

impl Cheby {
    /// Create a CHEBY reducer.
    pub fn new() -> Self {
        Cheby
    }

    /// Reduce to exactly `k` polynomial coefficients.
    ///
    /// # Errors
    ///
    /// Propagates [`PolyBasis::new`] validation.
    pub fn reduce_to_coeffs(&self, series: &TimeSeries, k: usize) -> Result<PolyCoeffs> {
        let basis = PolyBasis::new(series.len(), k)?;
        Ok(PolyCoeffs { coeffs: basis.project(series.values()), n: series.len() })
    }
}

impl Reducer for Cheby {
    fn name(&self) -> &'static str {
        "CHEBY"
    }

    fn coeffs_per_segment(&self) -> usize {
        1
    }

    fn reduce(&self, series: &TimeSeries, m: usize) -> Result<Representation> {
        let k = self.segments_for(m)?;
        Ok(Representation::Polynomial(self.reduce_to_coeffs(series, k)?))
    }

    fn reconstruct(&self, rep: &Representation) -> Result<TimeSeries> {
        match rep {
            Representation::Polynomial(p) => {
                let basis = PolyBasis::new(p.n, p.coeffs.len())?;
                TimeSeries::new(basis.synthesize(&p.coeffs))
            }
            _ => Err(Error::UnsupportedRepresentation { operation: "reconstruct" }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(v: &[f64]) -> TimeSeries {
        TimeSeries::new(v.to_vec()).unwrap()
    }

    #[test]
    fn basis_is_orthonormal() {
        let basis = PolyBasis::new(64, 12).unwrap();
        for i in 0..12 {
            for j in 0..12 {
                let dot: f64 =
                    basis.vectors[i].iter().zip(&basis.vectors[j]).map(|(a, b)| a * b).sum();
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((dot - want).abs() < 1e-9, "⟨p{i}, p{j}⟩ = {dot}");
            }
        }
    }

    #[test]
    fn high_degree_basis_remains_orthonormal() {
        // The "dimensionality curse" regime the paper probes (N > 25).
        let basis = PolyBasis::new(256, 40).unwrap();
        for i in 0..40 {
            for j in (i + 1)..40 {
                let dot: f64 =
                    basis.vectors[i].iter().zip(&basis.vectors[j]).map(|(a, b)| a * b).sum();
                assert!(dot.abs() < 1e-7, "⟨p{i}, p{j}⟩ = {dot}");
            }
        }
    }

    #[test]
    fn low_degree_polynomials_are_captured_exactly() {
        let v: Vec<f64> = (0..50)
            .map(|t| {
                let x = t as f64;
                0.01 * x * x - 0.3 * x + 2.0
            })
            .collect();
        let s = ts(&v);
        let rep = Cheby.reduce(&s, 3).unwrap();
        assert!(Cheby.max_deviation(&s, &rep).unwrap() < 1e-9);
    }

    #[test]
    fn parseval_energy_inequality() {
        let v: Vec<f64> = (0..80).map(|t| (t as f64 * 0.2).sin() + 0.1 * t as f64).collect();
        let coeffs = Cheby.reduce_to_coeffs(&ts(&v), 10).unwrap();
        let coeff_energy: f64 = coeffs.coeffs.iter().map(|c| c * c).sum();
        let series_energy: f64 = v.iter().map(|x| x * x).sum();
        assert!(coeff_energy <= series_energy + 1e-9);
    }

    #[test]
    fn more_coefficients_never_hurt_reconstruction() {
        let v: Vec<f64> = (0..64).map(|t| ((t * 31) % 17) as f64).collect();
        let s = ts(&v);
        let mut last = f64::INFINITY;
        for k in [2, 4, 8, 16, 32] {
            let rep = Cheby.reduce(&s, k).unwrap();
            let rec = Cheby.reconstruct(&rep).unwrap();
            let sse: f64 =
                s.values().iter().zip(rec.values()).map(|(a, b)| (a - b) * (a - b)).sum();
            assert!(sse <= last + 1e-9, "k={k}: sse {sse} > previous {last}");
            last = sse;
        }
    }

    #[test]
    fn invalid_sizes_rejected() {
        assert!(PolyBasis::new(8, 0).is_err());
        assert!(PolyBasis::new(8, 9).is_err());
        let s = ts(&[1.0, 2.0, 3.0]);
        assert!(Cheby.reduce(&s, 4).is_err());
    }
}
