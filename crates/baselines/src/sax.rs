//! SAX — Symbolic Aggregate approXimation
//! (Lin, Keogh, Lonardi & Chiu, DMKD 2003/2007).
//!
//! SAX computes a PAA reduction (`N = M` equal windows) and discretises
//! each mean into one of `α` symbols using breakpoints that split the
//! standard normal distribution into equiprobable regions (SAX assumes
//! z-normalised input). Reconstruction maps each symbol back to the
//! centroid of its region; `sapla-distance` provides the classic MINDIST
//! lower bound over the symbol table.

use sapla_core::{Error, Representation, Result, SymbolicWord, TimeSeries};

use crate::common::{equal_windows, Reducer};

/// Default alphabet size (a common SAX configuration).
pub const DEFAULT_ALPHABET: usize = 8;

/// The SAX reducer.
#[derive(Debug, Clone, Copy)]
pub struct Sax {
    /// Alphabet size `α ≥ 2`.
    pub alphabet_size: usize,
}

impl Default for Sax {
    fn default() -> Self {
        Sax { alphabet_size: DEFAULT_ALPHABET }
    }
}

/// The `α − 1` breakpoints splitting `N(0, 1)` into `α` equiprobable
/// regions (Table 3 of the SAX papers, computed for any `α` via the
/// inverse normal CDF).
pub fn gaussian_breakpoints(alphabet_size: usize) -> Vec<f64> {
    debug_assert!(alphabet_size >= 2);
    (1..alphabet_size).map(|i| inverse_normal_cdf(i as f64 / alphabet_size as f64)).collect()
}

/// Acklam's rational approximation of the standard normal quantile
/// function (relative error < 1.15e−9 — far below what symbol
/// discretisation can observe).
pub fn inverse_normal_cdf(p: f64) -> f64 {
    debug_assert!(p > 0.0 && p < 1.0);
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -inverse_normal_cdf(1.0 - p)
    }
}

impl Sax {
    /// SAX with a custom alphabet size (`≥ 2`).
    pub fn with_alphabet(alphabet_size: usize) -> Self {
        Sax { alphabet_size: alphabet_size.max(2) }
    }

    /// Reduce to exactly `k` symbols.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidSegmentCount`] when `k` is zero or exceeds the
    /// series length.
    pub fn reduce_to_word(&self, series: &TimeSeries, k: usize) -> Result<SymbolicWord> {
        let n = series.len();
        if k == 0 || k > n {
            return Err(Error::InvalidSegmentCount { segments: k, len: n });
        }
        let breakpoints = gaussian_breakpoints(self.alphabet_size);
        let sums = series.prefix_sums();
        let symbols = equal_windows(n, k)
            .into_iter()
            .map(|(s, e)| {
                let mean = sums.sum(s, e) / (e - s) as f64;
                // audit: cast_ok — partition_point ≤ breakpoints.len() =
                // alphabet_size − 1 ≤ 255.
                breakpoints.partition_point(|&b| b < mean) as u8
            })
            .collect();
        Ok(SymbolicWord { symbols, alphabet_size: self.alphabet_size, n })
    }

    /// Centroid values of each symbol region (used for reconstruction):
    /// the expected value of a standard normal conditioned on the region.
    pub fn symbol_centroids(&self) -> Vec<f64> {
        let alpha = self.alphabet_size;
        let bp = gaussian_breakpoints(alpha);
        // E[Z | a < Z < b] = (φ(a) − φ(b)) / (Φ(b) − Φ(a)); regions are
        // equiprobable so the denominator is 1/α.
        let phi = |x: f64| (-x * x / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt();
        (0..alpha)
            .map(|i| {
                let lo = if i == 0 { f64::NEG_INFINITY } else { bp[i - 1] };
                let hi = if i == alpha - 1 { f64::INFINITY } else { bp[i] };
                let phi_lo = if lo.is_finite() { phi(lo) } else { 0.0 };
                let phi_hi = if hi.is_finite() { phi(hi) } else { 0.0 };
                (phi_lo - phi_hi) * alpha as f64
            })
            .collect()
    }
}

impl Reducer for Sax {
    fn name(&self) -> &'static str {
        "SAX"
    }

    fn coeffs_per_segment(&self) -> usize {
        1
    }

    fn reduce(&self, series: &TimeSeries, m: usize) -> Result<Representation> {
        let k = self.segments_for(m)?;
        Ok(Representation::Symbolic(self.reduce_to_word(series, k)?))
    }

    fn reconstruct(&self, rep: &Representation) -> Result<TimeSeries> {
        match rep {
            Representation::Symbolic(w) => {
                let centroids = Sax::with_alphabet(w.alphabet_size).symbol_centroids();
                let mut out = vec![0.0; w.n];
                for ((s, e), &sym) in
                    equal_windows(w.n, w.symbols.len()).into_iter().zip(&w.symbols)
                {
                    out[s..e].fill(centroids[sym as usize]);
                }
                TimeSeries::new(out)
            }
            _ => Err(Error::UnsupportedRepresentation { operation: "reconstruct" }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(v: &[f64]) -> TimeSeries {
        TimeSeries::new(v.to_vec()).unwrap()
    }

    #[test]
    fn inverse_normal_cdf_matches_known_quantiles() {
        assert!(inverse_normal_cdf(0.5).abs() < 1e-9);
        assert!((inverse_normal_cdf(0.975) - 1.959964).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.025) + 1.959964).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.8413447) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn breakpoints_match_sax_table() {
        // Classic SAX table for α = 4: (−0.67, 0, 0.67).
        let bp = gaussian_breakpoints(4);
        assert!((bp[0] + 0.6745).abs() < 1e-3);
        assert!(bp[1].abs() < 1e-9);
        assert!((bp[2] - 0.6745).abs() < 1e-3);
        // α = 3: (−0.43, 0.43).
        let bp = gaussian_breakpoints(3);
        assert!((bp[0] + 0.4307).abs() < 1e-3);
    }

    #[test]
    fn symbols_are_monotone_in_value() {
        let s = ts(&[-2.0, -2.0, -0.5, -0.5, 0.5, 0.5, 2.0, 2.0]);
        let w = Sax::with_alphabet(4).reduce_to_word(&s, 4).unwrap();
        assert_eq!(w.symbols.len(), 4);
        for pair in w.symbols.windows(2) {
            assert!(pair[0] <= pair[1]);
        }
        assert_eq!(w.symbols[0], 0);
        assert_eq!(w.symbols[3], 3);
    }

    #[test]
    fn centroids_are_ordered_and_zero_mean() {
        let c = Sax::with_alphabet(8).symbol_centroids();
        assert!(c.windows(2).all(|w| w[0] < w[1]));
        let mean: f64 = c.iter().sum::<f64>() / c.len() as f64;
        assert!(mean.abs() < 1e-9, "equiprobable centroids average to 0, got {mean}");
    }

    #[test]
    fn reconstruction_is_coarser_than_paa() {
        // The paper's reason for excluding SAX from the max-deviation
        // comparison: symbol → number loses accuracy vs PAA.
        let v: Vec<f64> = (0..64).map(|t| (t as f64 * 0.2).sin()).collect();
        let s = ts(&v).znormalized();
        let sax = Sax::default();
        let w = sax.reduce(&s, 8).unwrap();
        let paa = crate::Paa.reduce(&s, 8).unwrap();
        let d_sax = sax.max_deviation(&s, &w).unwrap();
        let d_paa = crate::Paa.max_deviation(&s, &paa).unwrap();
        assert!(d_sax >= d_paa - 1e-9);
    }

    #[test]
    fn word_respects_alphabet() {
        let v: Vec<f64> = (0..128).map(|t| ((t * 37) % 19) as f64).collect();
        let s = ts(&v).znormalized();
        for alpha in [2, 4, 8, 16] {
            let w = Sax::with_alphabet(alpha).reduce_to_word(&s, 16).unwrap();
            assert!(w.symbols.iter().all(|&x| (x as usize) < alpha));
        }
    }
}
