//! Discrete Haar wavelet machinery used by APCA (Keogh et al., SIGMOD
//! 2001 / TODS 2002).
//!
//! APCA never needs the inverse transform: keeping a detail coefficient
//! whose support is `[s, e)` can only introduce value discontinuities at
//! `s`, `(s+e)/2` and `e`, so the *boundary set* of the truncated
//! reconstruction is derivable directly from which coefficients are kept —
//! that is why APCA's reconstruction has at most `3N` plateaus.

/// One Haar detail coefficient.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HaarCoeff {
    /// Support start (inclusive), in padded coordinates.
    pub start: usize,
    /// Support end (exclusive), in padded coordinates.
    pub end: usize,
    /// Raw detail value (half the difference of the child averages).
    pub detail: f64,
    /// L2-normalised magnitude `|detail|·√(support/2)` used for ranking.
    pub weight: f64,
}

impl HaarCoeff {
    /// Midpoint of the support — the discontinuity this coefficient adds.
    #[inline]
    pub fn mid(&self) -> usize {
        (self.start + self.end) / 2
    }
}

/// Next power of two ≥ `n`.
pub fn next_pow2(n: usize) -> usize {
    n.next_power_of_two()
}

/// Full Haar decomposition of `values` (padded to a power of two by
/// repeating the last sample, the standard APCA preprocessing).
///
/// Returns every detail coefficient with its support and normalised
/// weight; the top-level average is not returned (it carries no boundary
/// information). An empty input yields no coefficients.
pub fn haar_details(values: &[f64]) -> Vec<HaarCoeff> {
    let Some(&last) = values.last() else {
        return Vec::new();
    };
    let n = values.len();
    let p = next_pow2(n.max(1));
    let mut level: Vec<f64> = Vec::with_capacity(p);
    level.extend_from_slice(values);
    level.resize(p, last);

    let mut out = Vec::with_capacity(p.saturating_sub(1));
    let mut support = 2usize;
    while level.len() > 1 {
        let half = level.len() / 2;
        let mut next = Vec::with_capacity(half);
        for i in 0..half {
            let a = level[2 * i];
            let b = level[2 * i + 1];
            let detail = (a - b) / 2.0;
            next.push((a + b) / 2.0);
            out.push(HaarCoeff {
                start: i * support,
                end: (i + 1) * support,
                detail,
                // Normalised Haar magnitude: the unnormalised detail d on a
                // support of length s contributes d·√(s/2)·ψ̂, so rank by
                // |d|·√(s/2).
                weight: detail.abs() * ((support / 2) as f64).sqrt(),
            });
        }
        level = next;
        support *= 2;
    }
    out
}

/// The plateau boundaries (as inclusive right endpoints within `[0, n)`)
/// implied by keeping the `keep` largest-weight detail coefficients.
///
/// Always contains `n − 1` (the series end); all other candidates are
/// clipped away when they fall at or beyond `n − 1` (padding region).
pub fn kept_boundaries(values: &[f64], keep: usize) -> Vec<usize> {
    let n = values.len();
    let mut coeffs = haar_details(values);
    coeffs.sort_by(|x, y| y.weight.total_cmp(&x.weight));
    coeffs.truncate(keep);

    let mut bounds: Vec<usize> = Vec::with_capacity(3 * keep + 1);
    for c in &coeffs {
        // Discontinuities possible at start, mid and end of the support;
        // expressed as inclusive right endpoints of the plateau that ends
        // just before each position.
        for pos in [c.start, c.mid(), c.end] {
            if pos >= 1 && pos < n {
                bounds.push(pos - 1);
            }
        }
    }
    bounds.push(n - 1);
    bounds.sort_unstable();
    bounds.dedup();
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pow2_helper() {
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(2), 2);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(1000), 1024);
    }

    #[test]
    fn detail_count_is_p_minus_1() {
        let v = vec![1.0; 16];
        assert_eq!(haar_details(&v).len(), 15);
        let v = vec![1.0; 10]; // padded to 16
        assert_eq!(haar_details(&v).len(), 15);
    }

    #[test]
    fn constant_series_has_zero_details() {
        let v = vec![3.5; 8];
        assert!(haar_details(&v).iter().all(|c| c.detail == 0.0));
    }

    #[test]
    fn single_step_yields_one_dominant_coefficient() {
        // Step at the midpoint of a pow2 series: exactly one detail (the
        // top-level one) is non-zero.
        let mut v = vec![0.0; 8];
        v[4..].fill(8.0);
        let details = haar_details(&v);
        let nonzero: Vec<_> = details.iter().filter(|c| c.detail != 0.0).collect();
        assert_eq!(nonzero.len(), 1);
        assert_eq!((nonzero[0].start, nonzero[0].end), (0, 8));
        assert_eq!(nonzero[0].mid(), 4);
    }

    #[test]
    fn kept_boundaries_find_the_step() {
        let mut v = vec![0.0; 16];
        v[8..].fill(5.0);
        let b = kept_boundaries(&v, 1);
        assert!(b.contains(&7), "boundaries {b:?} must include the step at 7|8");
        assert_eq!(*b.last().unwrap(), 15);
    }

    #[test]
    fn boundaries_are_clipped_to_series() {
        let v: Vec<f64> = (0..10).map(|t| t as f64).collect(); // padded to 16
        let b = kept_boundaries(&v, 6);
        assert!(b.iter().all(|&x| x < 10));
        assert_eq!(*b.last().unwrap(), 9);
    }
}
