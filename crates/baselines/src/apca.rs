//! APCA — Adaptive Piecewise Constant Approximation
//! (Keogh, Chakrabarti, Pazzani & Mehrotra, SIGMOD 2001 / TODS 2002).
//!
//! The `O(n log n)` wavelet algorithm: take the Haar decomposition, keep
//! the `N` largest normalised coefficients, derive the plateau boundaries
//! they imply (≤ 3N segments), greedily merge the adjacent pair with the
//! smallest SSE increase until exactly `N = M/2` segments remain, then
//! replace each plateau with the exact mean of the original points.

use sapla_core::{ConstantSegment, PiecewiseConstant, Representation, Result, TimeSeries};

use crate::common::Reducer;
use crate::haar::kept_boundaries;

/// The APCA reducer.
#[derive(Debug, Clone, Copy, Default)]
pub struct Apca;

impl Apca {
    /// Create an APCA reducer.
    pub fn new() -> Self {
        Apca
    }

    /// Reduce to exactly `k` adaptive constant segments.
    ///
    /// # Errors
    ///
    /// [`sapla_core::Error::InvalidSegmentCount`] when `k` is zero or
    /// exceeds the series length.
    pub fn reduce_to_segments(&self, series: &TimeSeries, k: usize) -> Result<PiecewiseConstant> {
        let n = series.len();
        if k == 0 || k > n {
            return Err(sapla_core::Error::InvalidSegmentCount { segments: k, len: n });
        }
        let sums = series.prefix_sums();

        // 1. Candidate boundaries from the k largest Haar coefficients.
        let mut ends = kept_boundaries(series.values(), k);

        // 2. Too few segments (flat series, clipped padding): split the
        //    longest segments at their midpoint until k are available.
        while ends.len() < k {
            let (mut best_len, mut best_idx) = (0usize, usize::MAX);
            let mut start = 0usize;
            for (i, &e) in ends.iter().enumerate() {
                let len = e + 1 - start;
                if len > best_len {
                    best_len = len;
                    best_idx = i;
                }
                start = e + 1;
            }
            if best_len < 2 {
                break; // nothing splittable
            }
            let seg_start = if best_idx == 0 { 0 } else { ends[best_idx - 1] + 1 };
            ends.insert(best_idx, seg_start + best_len / 2 - 1);
        }

        // 3. Too many segments: merge the adjacent pair whose merged SSE
        //    (around the merged mean) rises least.
        let sse = |s: usize, e: usize| -> f64 {
            // Σc² − (Σc)²/l over [s, e] inclusive.
            let l = (e + 1 - s) as f64;
            let sm = sums.sum(s, e + 1);
            sums.sum_sq(s, e + 1) - sm * sm / l
        };
        while ends.len() > k {
            let mut best = (f64::INFINITY, 0usize);
            let mut start = 0usize;
            for i in 0..ends.len() - 1 {
                let mid = ends[i];
                let end = ends[i + 1];
                let cost = sse(start, end) - sse(start, mid) - sse(mid + 1, end);
                if cost < best.0 {
                    best = (cost, i);
                }
                start = mid + 1;
            }
            ends.remove(best.1);
        }

        // 4. Exact means per plateau.
        let mut segs = Vec::with_capacity(ends.len());
        let mut start = 0usize;
        for &e in &ends {
            segs.push(ConstantSegment { v: sums.sum(start, e + 1) / (e + 1 - start) as f64, r: e });
            start = e + 1;
        }
        PiecewiseConstant::new(segs)
    }
}

impl Reducer for Apca {
    fn name(&self) -> &'static str {
        "APCA"
    }

    fn coeffs_per_segment(&self) -> usize {
        2 // v_i, r_i (Table 1)
    }

    fn reduce(&self, series: &TimeSeries, m: usize) -> Result<Representation> {
        let k = self.segments_for(m)?;
        Ok(Representation::Constant(self.reduce_to_segments(series, k)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Paa;

    fn ts(v: &[f64]) -> TimeSeries {
        TimeSeries::new(v.to_vec()).unwrap()
    }

    #[test]
    fn steps_are_recovered_exactly() {
        // Three plateaus, three segments → lossless.
        let mut v = vec![1.0; 10];
        v.extend(vec![5.0; 14]);
        v.extend(vec![-2.0; 8]);
        let s = ts(&v);
        let rep = Apca.reduce_to_segments(&s, 3).unwrap();
        assert_eq!(rep.num_segments(), 3);
        assert!(rep.max_deviation(&s).unwrap() < 1e-9, "plateaus should be exact");
    }

    #[test]
    fn segment_count_is_exact() {
        let v: Vec<f64> = (0..100).map(|t| ((t * 7919) % 97) as f64).collect();
        let s = ts(&v);
        for k in [1, 2, 5, 9, 16] {
            let rep = Apca.reduce_to_segments(&s, k).unwrap();
            assert_eq!(rep.num_segments(), k, "k={k}");
        }
    }

    #[test]
    fn beats_paa_on_unevenly_detailed_series() {
        // Flat left half, four plateaus on the right whose edges do not
        // line up with equal windows — the adaptive method should spend
        // its segments on the busy region.
        let mut v = vec![0.0; 32];
        v.extend(vec![10.0; 8]);
        v.extend(vec![-10.0; 8]);
        v.extend(vec![5.0; 8]);
        v.extend(vec![-5.0; 8]);
        let s = ts(&v);
        let apca = Apca.reduce(&s, 10).unwrap(); // N = 5 adaptive: exact
        let paa = Paa.reduce(&s, 10).unwrap(); // N = 10 equal: misaligned
        let d_apca = Apca.max_deviation(&s, &apca).unwrap();
        let d_paa = Paa.max_deviation(&s, &paa).unwrap();
        assert!(d_apca <= d_paa + 1e-9, "APCA ({d_apca}) should not lose to PAA ({d_paa}) here");
    }

    #[test]
    fn constant_series_still_yields_k_segments() {
        let s = ts(&vec![7.0; 40]);
        let rep = Apca.reduce_to_segments(&s, 4).unwrap();
        assert_eq!(rep.num_segments(), 4);
        assert!(rep.max_deviation(&s).unwrap() < 1e-12);
    }

    #[test]
    fn non_pow2_lengths_are_covered() {
        let v: Vec<f64> = (0..117).map(|t| (t as f64 * 0.2).sin()).collect();
        let s = ts(&v);
        let rep = Apca.reduce_to_segments(&s, 6).unwrap();
        assert_eq!(rep.series_len(), 117);
        assert_eq!(rep.num_segments(), 6);
    }

    #[test]
    fn budget_maps_to_half_segments() {
        let s = ts(&(0..64).map(|t| t as f64).collect::<Vec<_>>());
        assert_eq!(Apca.reduce(&s, 12).unwrap().num_segments(), 6);
        assert!(Apca.reduce(&s, 7).is_err());
    }
}
