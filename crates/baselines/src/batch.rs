//! Batch (and parallel) reduction of whole datasets — the ingest path of
//! the paper's protocol (117 datasets × 100 series).
//!
//! Reduction of independent series is embarrassingly parallel; the
//! parallel variant stripes the input over crossbeam scoped threads. With
//! APLA's `O(N n²)` cost this is the difference between minutes and
//! hours on the full protocol.

use sapla_core::{Representation, Result, TimeSeries};

use crate::common::Reducer;

/// Reduce every series sequentially, preserving order.
///
/// # Errors
///
/// Returns the first reduction failure.
pub fn reduce_batch(
    reducer: &dyn Reducer,
    series: &[TimeSeries],
    m: usize,
) -> Result<Vec<Representation>> {
    series.iter().map(|s| reducer.reduce(s, m)).collect()
}

/// Reduce every series using up to `threads` worker threads, preserving
/// order. `threads = 0` or `1` degrades to the sequential path.
///
/// # Errors
///
/// Returns the first reduction failure (by input order among failing
/// stripes).
pub fn reduce_batch_parallel(
    reducer: &dyn Reducer,
    series: &[TimeSeries],
    m: usize,
    threads: usize,
) -> Result<Vec<Representation>> {
    let threads = threads.max(1).min(series.len().max(1));
    if threads <= 1 {
        return reduce_batch(reducer, series, m);
    }
    let chunk = series.len().div_ceil(threads);
    let mut results: Vec<Result<Vec<Representation>>> = Vec::with_capacity(threads);
    crossbeam::scope(|scope| {
        let handles: Vec<_> = series
            .chunks(chunk)
            .map(|stripe| {
                scope.spawn(move |_| {
                    stripe
                        .iter()
                        .map(|s| reducer.reduce(s, m))
                        .collect::<Result<Vec<_>>>()
                })
            })
            .collect();
        for h in handles {
            results.push(h.join().expect("reduction workers do not panic"));
        }
    })
    .expect("crossbeam scope does not panic");

    let mut out = Vec::with_capacity(series.len());
    for stripe in results {
        out.extend(stripe?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Paa, SaplaReducer};

    fn series(count: usize) -> Vec<TimeSeries> {
        (0..count)
            .map(|i| {
                TimeSeries::new(
                    (0..96).map(|t| ((t + i * 3) as f64 * 0.17).sin() * 2.0).collect(),
                )
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn parallel_matches_sequential() {
        let data = series(23);
        let reducer = SaplaReducer::new();
        let seq = reduce_batch(&reducer, &data, 12).unwrap();
        for threads in [1usize, 2, 4, 7] {
            let par = reduce_batch_parallel(&reducer, &data, 12, threads).unwrap();
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn empty_input() {
        let reducer = SaplaReducer::new();
        assert!(reduce_batch_parallel(&reducer, &[], 12, 4).unwrap().is_empty());
    }

    #[test]
    fn errors_propagate() {
        // M = 0 fails for every series.
        let data = series(5);
        assert!(reduce_batch_parallel(&Paa, &data, 0, 3).is_err());
        assert!(reduce_batch(&Paa, &data, 0).is_err());
    }

    #[test]
    fn more_threads_than_series_is_fine() {
        let data = series(2);
        let out = reduce_batch_parallel(&Paa, &data, 8, 16).unwrap();
        assert_eq!(out.len(), 2);
    }
}
