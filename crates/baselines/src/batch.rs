//! Batch (and parallel) reduction of whole datasets — the ingest path of
//! the paper's protocol (117 datasets × 100 series).
//!
//! Reduction of independent series is embarrassingly parallel; the
//! parallel variant runs on the `sapla-parallel` work-stealing engine,
//! so skewed workloads (APLA's `O(N n²)` reductions mixed with cheap
//! PAA ones) rebalance across workers instead of serialising behind a
//! fixed stripe. With APLA's cost this is the difference between
//! minutes and hours on the full protocol.
//!
//! The parallel path is a drop-in for the sequential one: output order
//! is the input order, the returned error is the first failure *by
//! input order* (not by wall-clock), and a panicking reducer unwinds on
//! the caller instead of aborting a worker join.

use sapla_core::{Representation, Result, TimeSeries};
use sapla_parallel::par_try_map_init;

use crate::common::{ReduceScratch, Reducer};

/// Reduce every series sequentially, preserving order. One
/// [`ReduceScratch`] is reused across the whole batch, so SAPLA's stage
/// workspace reaches steady state after the first few series and stops
/// allocating.
///
/// # Errors
///
/// Returns the first reduction failure.
pub fn reduce_batch(
    reducer: &dyn Reducer,
    series: &[TimeSeries],
    m: usize,
) -> Result<Vec<Representation>> {
    let _span = sapla_obs::span!("baselines.reduce_batch");
    sapla_obs::counter!("baselines.reduce.series", series.len() as u64);
    let mut scratch = ReduceScratch::new();
    series.iter().map(|s| reducer.reduce_with_scratch(s, m, &mut scratch)).collect()
}

/// Reduce every series using up to `threads` worker threads, preserving
/// order. `threads = 0` uses the hardware thread count; `1` degrades to
/// the sequential path. For any thread count the result — including the
/// choice of error on failure — is identical to [`reduce_batch`].
///
/// # Errors
///
/// Returns the failure of the earliest failing series by input order,
/// exactly as the sequential loop would.
pub fn reduce_batch_parallel(
    reducer: &dyn Reducer,
    series: &[TimeSeries],
    m: usize,
    threads: usize,
) -> Result<Vec<Representation>> {
    if sapla_parallel::effective_threads(threads, series.len()) <= 1 {
        return reduce_batch(reducer, series, m);
    }
    let _span = sapla_obs::span!("baselines.reduce_batch");
    sapla_obs::counter!("baselines.reduce.series", series.len() as u64);
    par_try_map_init(series, threads, ReduceScratch::new, |scratch, _, s| {
        reducer.reduce_with_scratch(s, m, scratch)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Paa, SaplaReducer};
    use sapla_core::Error;

    fn series(count: usize) -> Vec<TimeSeries> {
        (0..count)
            .map(|i| {
                TimeSeries::new((0..96).map(|t| ((t + i * 3) as f64 * 0.17).sin() * 2.0).collect())
                    .unwrap()
            })
            .collect()
    }

    /// A series too short to carry `m` segments — reduction fails with
    /// `InvalidSegmentCount { len }`, so the length identifies which
    /// failing series produced the returned error.
    fn short_series(len: usize) -> TimeSeries {
        TimeSeries::new((0..len).map(|t| t as f64).collect()).unwrap()
    }

    #[test]
    fn parallel_matches_sequential() {
        let data = series(23);
        let reducer = SaplaReducer::new();
        let seq = reduce_batch(&reducer, &data, 12).unwrap();
        for threads in [1usize, 2, 4, 7] {
            let par = reduce_batch_parallel(&reducer, &data, 12, threads).unwrap();
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn empty_input() {
        let reducer = SaplaReducer::new();
        assert!(reduce_batch_parallel(&reducer, &[], 12, 4).unwrap().is_empty());
    }

    #[test]
    fn errors_propagate() {
        // M = 0 fails for every series.
        let data = series(5);
        assert!(reduce_batch_parallel(&Paa, &data, 0, 3).is_err());
        assert!(reduce_batch(&Paa, &data, 0).is_err());
    }

    #[test]
    fn mid_batch_failure_returns_first_error_by_input_order() {
        // Two failing series of different lengths buried mid-batch: the
        // error must come from index 7 (len 3) on every thread count,
        // never from index 15 (len 5) regardless of which worker hits
        // its failure first in wall time.
        let mut data = series(23);
        data[7] = short_series(3);
        data[15] = short_series(5);
        for threads in [1usize, 2, 4, 7] {
            let err = reduce_batch_parallel(&Paa, &data, 12, threads).unwrap_err();
            match err {
                Error::InvalidSegmentCount { len, .. } => {
                    assert_eq!(len, 3, "threads = {threads}: wrong failing series");
                }
                other => panic!("unexpected error: {other:?}"),
            }
        }
    }

    #[test]
    fn more_threads_than_series_is_fine() {
        let data = series(2);
        let out = reduce_batch_parallel(&Paa, &data, 8, 16).unwrap();
        assert_eq!(out.len(), 2);
    }
}
