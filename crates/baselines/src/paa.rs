//! PAA — Piecewise Aggregate Approximation
//! (Keogh et al., KAIS 2001; Yi & Faloutsos, VLDB 2000).
//!
//! The series is split into `N = M` equal-length windows, each replaced by
//! its mean. `O(n)`.

use sapla_core::{ConstantSegment, PiecewiseConstant, Representation, Result, TimeSeries};

use crate::common::{equal_windows, Reducer};

/// The PAA reducer.
///
/// ```
/// use sapla_baselines::Paa;
/// use sapla_core::TimeSeries;
///
/// let ts = TimeSeries::new(vec![1.0, 3.0, 5.0, 7.0])?;
/// let rep = Paa.reduce_to_segments(&ts, 2)?;
/// assert_eq!(rep.segments()[0].v, 2.0);
/// assert_eq!(rep.segments()[1].v, 6.0);
/// # Ok::<(), sapla_core::Error>(())
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Paa;

impl Paa {
    /// Create a PAA reducer.
    pub fn new() -> Self {
        Paa
    }

    /// Reduce to exactly `k` equal-length constant segments.
    ///
    /// # Errors
    ///
    /// [`sapla_core::Error::InvalidSegmentCount`] when `k` is zero or
    /// exceeds the series length.
    pub fn reduce_to_segments(&self, series: &TimeSeries, k: usize) -> Result<PiecewiseConstant> {
        let n = series.len();
        if k == 0 || k > n {
            return Err(sapla_core::Error::InvalidSegmentCount { segments: k, len: n });
        }
        let sums = series.prefix_sums();
        let segs = equal_windows(n, k)
            .into_iter()
            .map(|(s, e)| ConstantSegment { v: sums.sum(s, e) / (e - s) as f64, r: e - 1 })
            .collect();
        PiecewiseConstant::new(segs)
    }
}

impl Reducer for Paa {
    fn name(&self) -> &'static str {
        "PAA"
    }

    fn coeffs_per_segment(&self) -> usize {
        1 // v_i per segment (Table 1)
    }

    fn reduce(&self, series: &TimeSeries, m: usize) -> Result<Representation> {
        let k = self.segments_for(m)?;
        Ok(Representation::Constant(self.reduce_to_segments(series, k)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(v: &[f64]) -> TimeSeries {
        TimeSeries::new(v.to_vec()).unwrap()
    }

    #[test]
    fn means_are_exact() {
        let s = ts(&[1.0, 3.0, 5.0, 7.0, 2.0, 4.0]);
        let rep = Paa.reduce_to_segments(&s, 3).unwrap();
        let vals: Vec<f64> = rep.segments().iter().map(|c| c.v).collect();
        assert_eq!(vals, vec![2.0, 6.0, 3.0]);
        assert_eq!(rep.segments().iter().map(|c| c.r).collect::<Vec<_>>(), vec![1, 3, 5]);
    }

    #[test]
    fn constant_series_reduces_losslessly() {
        let s = ts(&vec![4.2; 32]);
        let rep = Paa.reduce(&s, 8).unwrap();
        assert!(Paa.max_deviation(&s, &rep).unwrap() < 1e-12);
    }

    #[test]
    fn budget_equals_segments() {
        let s = ts(&(0..32).map(|t| t as f64).collect::<Vec<_>>());
        assert_eq!(Paa.reduce(&s, 12).unwrap().num_segments(), 12);
        assert!(Paa.reduce(&s, 0).is_err());
        assert!(Paa.reduce(&s, 33).is_err());
    }

    #[test]
    fn paa_mean_minimises_sse_per_window() {
        let s = ts(&[0.0, 10.0, 0.0, 10.0]);
        let rep = Paa.reduce_to_segments(&s, 1).unwrap();
        assert_eq!(rep.segments()[0].v, 5.0);
    }
}
