//! APLA — Adaptive Piecewise Linear Approximation by exact dynamic
//! programming (Ljosa & Singh, ICDE 2007; Section 2 of the SAPLA paper).
//!
//! APLA builds the deviation matrix `ϖ[m, t]` — the best cost of covering
//! points `0..m` with `t` segments — through
//!
//! ```text
//!   ϖ[m, t] = min_α ( ϖ[α, t−1] + ε(α+1 .. m) )
//! ```
//!
//! where `ε` is the max deviation of the least-squares line over the last
//! segment. The result is the *optimal* `N = M/3` segmentation under the
//! sum-of-max-deviations objective — the quality gold standard SAPLA is
//! measured against — at the `O(N n²)` DP cost (plus the `ε` window table)
//! that motivates SAPLA in the first place. This implementation is
//! intentionally the faithful slow comparator.

use sapla_core::{LineFit, LinearSegment, PiecewiseLinear, Representation, Result, TimeSeries};

use crate::common::Reducer;

/// The APLA reducer.
///
/// ```
/// use sapla_baselines::Apla;
/// use sapla_core::TimeSeries;
///
/// // Two perfect linear regimes reduce losslessly with two segments.
/// let mut v: Vec<f64> = (0..20).map(|t| t as f64).collect();
/// v.extend((0..20).map(|t| 19.0 - t as f64));
/// let ts = TimeSeries::new(v)?;
/// let rep = Apla.reduce_to_segments(&ts, 2)?;
/// assert!(rep.max_deviation(&ts)? < 1e-9);
/// # Ok::<(), sapla_core::Error>(())
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Apla;

impl Apla {
    /// Create an APLA reducer.
    pub fn new() -> Self {
        Apla
    }

    /// Reduce to exactly `k` adaptive linear segments, minimising the sum
    /// of per-segment max deviations.
    ///
    /// # Errors
    ///
    /// [`sapla_core::Error::InvalidSegmentCount`] when `k` is zero or
    /// exceeds the series length.
    pub fn reduce_to_segments(&self, series: &TimeSeries, k: usize) -> Result<PiecewiseLinear> {
        let n = series.len();
        if k == 0 || k > n {
            return Err(sapla_core::Error::InvalidSegmentCount { segments: k, len: n });
        }
        let values = series.values();
        let sums = series.prefix_sums();

        // ε(s .. e): max deviation of the LS fit over [s, e), stored as
        // err[s][e − s − 1]. Building the table dominates the runtime.
        let err = window_error_table(values);
        let eps = |s: usize, e: usize| err[s][e - s - 1];

        // ϖ[t][m]: best cost covering the first m points with t segments.
        // parent[t][m]: the α achieving it.
        let mut prev: Vec<f64> = (0..=n).map(|m| if m == 0 { 0.0 } else { eps(0, m) }).collect();
        let mut parents: Vec<Vec<u32>> = Vec::with_capacity(k);
        parents.push(vec![0; n + 1]);

        for t in 2..=k {
            let mut cur = vec![f64::INFINITY; n + 1];
            let mut par = vec![0u32; n + 1];
            // m points split as α points + last segment [α, m); need
            // α ≥ t−1 (each earlier segment ≥ 1 point) and m − α ≥ 1.
            for m in t..=n {
                let mut best = f64::INFINITY;
                let mut best_a = t - 1;
                #[allow(clippy::needless_range_loop)]
                // alpha is a split position, not just an index
                for alpha in (t - 1)..m {
                    let c = prev[alpha] + eps(alpha, m);
                    if c < best {
                        best = c;
                        best_a = alpha;
                    }
                }
                cur[m] = best;
                // audit: cast_ok — boundary index < series length, and the
                // codec caps records far below u32::MAX.
                par[m] = best_a as u32;
            }
            prev = cur;
            parents.push(par);
        }

        // Backtrack the optimal boundaries.
        let mut cuts = Vec::with_capacity(k);
        let mut m = n;
        for t in (1..=k).rev() {
            cuts.push(m);
            m = if t == 1 { 0 } else { parents[t - 1][m] as usize };
        }
        cuts.reverse();

        let mut segs = Vec::with_capacity(k);
        let mut start = 0usize;
        for &end in &cuts {
            let fit = LineFit::over_window(&sums, start, end)?;
            segs.push(LinearSegment { a: fit.a, b: fit.b, r: end - 1 });
            start = end;
        }
        PiecewiseLinear::new(segs)
    }
}

/// Max deviation of the least-squares line of every window `[s, e)`.
fn window_error_table(values: &[f64]) -> Vec<Vec<f64>> {
    let n = values.len();
    let mut err = Vec::with_capacity(n);
    for s in 0..n {
        let mut row = Vec::with_capacity(n - s);
        let mut stats = sapla_core::SegStats::single(values[s]);
        row.push(0.0); // single point fits exactly
        for e in (s + 2)..=n {
            stats = stats.push_right(values[e - 1]);
            let fit = stats.fit();
            let mut max = 0.0f64;
            for (u, &c) in values[s..e].iter().enumerate() {
                let d = (c - fit.a * u as f64 - fit.b).abs();
                if d > max {
                    max = d;
                }
            }
            row.push(max);
        }
        err.push(row);
    }
    err
}

impl Reducer for Apla {
    fn name(&self) -> &'static str {
        "APLA"
    }

    fn coeffs_per_segment(&self) -> usize {
        3 // a_i, b_i, r_i (Table 1)
    }

    fn reduce(&self, series: &TimeSeries, m: usize) -> Result<Representation> {
        let k = self.segments_for(m)?;
        Ok(Representation::Linear(self.reduce_to_segments(series, k)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SaplaReducer;

    const FIG1: [f64; 20] = [
        7.0, 8.0, 20.0, 15.0, 18.0, 8.0, 8.0, 15.0, 10.0, 1.0, 4.0, 3.0, 3.0, 5.0, 4.0, 9.0, 2.0,
        9.0, 10.0, 10.0,
    ];

    fn ts(v: &[f64]) -> TimeSeries {
        TimeSeries::new(v.to_vec()).unwrap()
    }

    fn sum_of_segment_devs(rep: &PiecewiseLinear, s: &TimeSeries) -> f64 {
        rep.segment_deviations(s).unwrap().iter().sum()
    }

    #[test]
    fn piecewise_linear_input_is_recovered_exactly() {
        // Two perfect linear pieces, two segments → zero deviation.
        let mut v: Vec<f64> = (0..12).map(|t| 2.0 * t as f64).collect();
        v.extend((1..=10).map(|t| 22.0 - 3.0 * t as f64));
        let s = ts(&v);
        let rep = Apla.reduce_to_segments(&s, 2).unwrap();
        assert!(rep.max_deviation(&s).unwrap() < 1e-9);
        // v[11] = 22 lies on both lines, so cutting after index 10 or 11
        // are both exact — accept either optimum.
        assert!(matches!(rep.segments()[0].r, 10 | 11), "r = {}", rep.segments()[0].r);
    }

    #[test]
    fn dp_is_no_worse_than_sapla_objective() {
        // APLA minimises the sum of segment max deviations exactly, so it
        // can never lose to SAPLA under that objective.
        let s = ts(&FIG1);
        let apla = Apla.reduce_to_segments(&s, 4).unwrap();
        let sapla_rep = SaplaReducer::new().reduce(&s, 12).unwrap();
        let sapla = sapla_rep.as_linear().unwrap();
        assert!(sum_of_segment_devs(&apla, &s) <= sum_of_segment_devs(sapla, &s) + 1e-9);
    }

    #[test]
    fn dp_beats_every_exhaustive_alternative_on_a_small_case() {
        // Brute-force all 2-cut segmentations of a 12-point series and
        // check the DP found the optimum.
        let v: Vec<f64> = (0..12).map(|t| ((t * t * 13) % 23) as f64).collect();
        let s = ts(&v);
        let rep = Apla.reduce_to_segments(&s, 3).unwrap();
        let dp_cost = sum_of_segment_devs(&rep, &s);
        let sums = s.prefix_sums();
        let seg_dev = |st: usize, e: usize| -> f64 {
            let fit = LineFit::over_window(&sums, st, e).unwrap();
            fit.max_deviation(&v[st..e])
        };
        let mut best = f64::INFINITY;
        for c1 in 1..11 {
            for c2 in (c1 + 1)..12 {
                let cost = seg_dev(0, c1) + seg_dev(c1, c2) + seg_dev(c2, 12);
                best = best.min(cost);
            }
        }
        assert!((dp_cost - best).abs() < 1e-9, "dp {dp_cost} vs brute {best}");
    }

    #[test]
    fn fig1_band() {
        // Paper Fig. 1b: APLA reaches max deviation ≈ 9.09 with N = 4.
        let s = ts(&FIG1);
        let rep = Apla.reduce_to_segments(&s, 4).unwrap();
        let dev = rep.max_deviation(&s).unwrap();
        assert!(dev < 12.0, "APLA on Fig.1: {dev}");
    }

    #[test]
    fn one_segment_equals_global_fit() {
        let v: Vec<f64> = (0..9).map(|t| (t as f64).sqrt()).collect();
        let s = ts(&v);
        let rep = Apla.reduce_to_segments(&s, 1).unwrap();
        let fit = LineFit::over_slice(&v);
        assert!((rep.segments()[0].a - fit.a).abs() < 1e-12);
    }

    #[test]
    fn segment_count_boundaries() {
        let s = ts(&[1.0, 5.0, 2.0]);
        assert!(Apla.reduce_to_segments(&s, 0).is_err());
        assert!(Apla.reduce_to_segments(&s, 4).is_err());
        let rep = Apla.reduce_to_segments(&s, 3).unwrap();
        assert_eq!(rep.num_segments(), 3);
        assert!(rep.max_deviation(&s).unwrap() < 1e-12);
    }
}
