//! The uniform [`Reducer`] interface shared by SAPLA and all baselines.

use sapla_core::sapla::{Sapla, SaplaScratch};
use sapla_core::{Error, Representation, Result, TimeSeries};

/// Reusable per-worker workspace for repeated [`Reducer::reduce_with_scratch`]
/// calls. Wraps a [`SaplaScratch`] today; reducers that carry no reusable
/// state simply ignore it. One scratch per thread — the batch paths hold
/// one per worker (`par_try_map_init`), never share one across threads.
#[derive(Debug, Default)]
pub struct ReduceScratch {
    /// SAPLA's stage workspace (heaps, memo tables, prefix sums).
    pub sapla: SaplaScratch,
}

impl ReduceScratch {
    /// An empty workspace; buffers grow to steady state on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Equal-length segmentation boundaries: split `n` points into `k` windows
/// whose lengths differ by at most one (the convention PAA/PLA/SAX use).
///
/// Returns the half-open `[start, end)` windows.
pub fn equal_windows(n: usize, k: usize) -> Vec<(usize, usize)> {
    debug_assert!(k >= 1 && k <= n);
    let mut out = Vec::with_capacity(k);
    for j in 0..k {
        let start = j * n / k;
        let end = (j + 1) * n / k;
        out.push((start, end));
    }
    out
}

/// A dimensionality reduction method evaluated by the paper.
///
/// All methods are parameterised by the representation-coefficient budget
/// `M` (not the segment count), mirroring the paper's "same `M`, different
/// `N`" comparison protocol (Fig. 1, Table 1).
pub trait Reducer: Send + Sync {
    /// Method name as printed in the paper's figures.
    fn name(&self) -> &'static str;

    /// Coefficients consumed per segment (Table 1's "Coeffici." column).
    fn coeffs_per_segment(&self) -> usize;

    /// Reduce a series with coefficient budget `m`.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidCoefficientCount`] when `m` is not a positive
    /// multiple of [`Reducer::coeffs_per_segment`], or the implied segment
    /// count does not fit the series.
    fn reduce(&self, series: &TimeSeries, m: usize) -> Result<Representation>;

    /// Reduce with a caller-provided workspace, allowing batch drivers to
    /// amortise allocations across many series. Results are identical to
    /// [`Reducer::reduce`] regardless of the scratch's history; the
    /// default implementation ignores the scratch (most baselines have no
    /// reusable state worth threading).
    ///
    /// # Errors
    ///
    /// Same contract as [`Reducer::reduce`].
    fn reduce_with_scratch(
        &self,
        series: &TimeSeries,
        m: usize,
        _scratch: &mut ReduceScratch,
    ) -> Result<Representation> {
        self.reduce(series, m)
    }

    /// Reconstruct an (approximate) series from a representation this
    /// reducer produced.
    ///
    /// # Errors
    ///
    /// [`Error::UnsupportedRepresentation`] if `rep` is a variant this
    /// reducer never produces.
    fn reconstruct(&self, rep: &Representation) -> Result<TimeSeries> {
        match rep {
            Representation::Linear(r) => Ok(r.reconstruct()),
            Representation::Constant(r) => Ok(r.reconstruct()),
            _ => Err(Error::UnsupportedRepresentation { operation: "reconstruct" }),
        }
    }

    /// Max deviation of the representation against the original series
    /// (Definition 3.4), via [`Reducer::reconstruct`].
    ///
    /// # Errors
    ///
    /// Propagates reconstruction errors and length mismatches.
    fn max_deviation(&self, series: &TimeSeries, rep: &Representation) -> Result<f64> {
        let rec = self.reconstruct(rep)?;
        series.max_abs_diff(&rec)
    }

    /// The segment count implied by budget `m`, validating divisibility.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidCoefficientCount`] if `m` is zero or not a multiple
    /// of the per-segment coefficient count.
    fn segments_for(&self, m: usize) -> Result<usize> {
        let per = self.coeffs_per_segment();
        if m == 0 || !m.is_multiple_of(per) {
            return Err(Error::InvalidCoefficientCount {
                requested: m,
                reason: "budget must be a positive multiple of the per-segment count",
            });
        }
        Ok(m / per)
    }
}

/// SAPLA behind the [`Reducer`] interface (the paper's headline method).
#[derive(Debug, Clone, Default)]
pub struct SaplaReducer {
    config: sapla_core::sapla::SaplaConfig,
}

impl SaplaReducer {
    /// SAPLA with the default (paper) configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// SAPLA with a custom stage configuration (ablations).
    pub fn with_config(config: sapla_core::sapla::SaplaConfig) -> Self {
        SaplaReducer { config }
    }
}

impl Reducer for SaplaReducer {
    fn name(&self) -> &'static str {
        "SAPLA"
    }

    fn coeffs_per_segment(&self) -> usize {
        sapla_core::sapla::COEFFS_PER_SEGMENT
    }

    fn reduce(&self, series: &TimeSeries, m: usize) -> Result<Representation> {
        self.reduce_with_scratch(series, m, &mut ReduceScratch::new())
    }

    fn reduce_with_scratch(
        &self,
        series: &TimeSeries,
        m: usize,
        scratch: &mut ReduceScratch,
    ) -> Result<Representation> {
        let n = self.segments_for(m)?;
        let sapla = Sapla::with_segments(n).with_config(self.config);
        let repr = sapla.reduce_with(series, &mut scratch.sapla)?;
        Ok(Representation::Linear(repr))
    }
}

/// All eight methods of Table 1, in the paper's figure order.
pub fn all_reducers() -> Vec<Box<dyn Reducer>> {
    vec![
        Box::new(SaplaReducer::new()),
        Box::new(crate::Apla::new()),
        Box::new(crate::Apca::new()),
        Box::new(crate::Pla::new()),
        Box::new(crate::Paa::new()),
        Box::new(crate::Paalm::default()),
        Box::new(crate::Cheby::new()),
        Box::new(crate::Sax::default()),
    ]
}
