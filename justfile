# Local CI entry points. `just ci` is the gate a PR must pass.

# Tier-1: the seed suite must build in release and every test must pass.
tier1:
    cargo build --release
    cargo test -q

# Lints: warnings are errors, formatting is canonical.
lint:
    cargo clippy --workspace --all-targets -- -D warnings
    cargo fmt --all --check

# Static analysis + model checking: the custom lint pass over every
# crate (all seven lints workspace-blocking), the audit crate's own
# fixture/explorer tests, and the strict-invariants runtime layer.
audit:
    cargo run -q -p sapla-audit
    cargo test -q -p sapla-audit
    cargo test -q -p sapla-core --features strict-invariants
    cargo test -q -p sapla-distance --features strict-invariants
    cargo test -q -p sapla-index --features strict-invariants

# Condvar-aware model check of the sapla-serve admission queue:
# exhaustive enumeration with pinned schedule counts, the lost-wakeup
# and if-wait canaries, and the seeded randomized long-run (tune with
# SAPLA_AUDIT_RANDOM_RUNS / SAPLA_AUDIT_SEED without recompiling).
audit-model-serve:
    cargo test -q -p sapla-audit --test model_serve

# Observability: the instrumented feature matrix must stay green, the
# uninstrumented state must too (the CLI is excluded from the second run:
# its default build turns `obs` on for the whole graph), and the CLI
# profile surface must emit valid JSON (checked by a Rust test, no jq).
obs:
    cargo test -q -p sapla-obs --features obs
    cargo test -q -p sapla-core --features obs
    cargo test -q -p sapla-distance --features obs
    cargo test -q -p sapla-parallel --features obs
    cargo test -q -p sapla-baselines --features obs
    cargo test -q -p sapla-index --features obs
    cargo test -q -p sapla-bench --lib --features obs
    cargo test -q -p sapla-obs -p sapla-core -p sapla-distance -p sapla-parallel -p sapla-baselines -p sapla-index -p sapla-integration
    cargo test -q -p sapla-cli --test cli profile_json

# Daemon smoke: the wire/loopback suite of sapla-serve in every feature
# state (stock, instrumented, strict), plus the end-to-end `sapla serve`
# subprocess test. The obs run is what checks the `stats` wire command
# reports non-zero batching and pruning counters.
serve-smoke:
    cargo test -q -p sapla-serve
    cargo test -q -p sapla-serve --features obs
    cargo test -q -p sapla-serve --features strict-invariants
    cargo test -q -p sapla-cli --test cli serve

# Request tracing & metrics exposition: the OP_METRICS / flight
# recorder / slow-log loopback tests under the instrumented build, the
# `sapla stats --metrics` subprocess round-trip, and the perf report's
# obs_overhead section (validated by a Rust test, no jq).
metrics:
    cargo test -q -p sapla-serve --features obs metrics
    cargo test -q -p sapla-serve --features obs traces_decompose
    cargo test -q -p sapla-serve --features obs slow_query_log
    cargo test -q -p sapla-cli --test cli stats_subcommand
    cargo test -q -p sapla-bench --lib --features obs quick_grid_runs_and_serialises

# Zero-copy snapshot persistence: the sapla-store container fuzz suite
# (truncation / bit-flip / misalignment — every failure an Err, never a
# panic), then the engine snapshot round-trip tests and the
# bit-identity / quantization-bound property tests, stock and under
# strict-invariants (which re-proves `Dist_LB ≤ exact + slack` inside
# every refinement the snapshot-loaded trees perform).
persist:
    cargo test -q -p sapla-store
    cargo test -q -p sapla-index --lib snapshot
    cargo test -q -p sapla-index --test snapshot_props
    cargo test -q -p sapla-index --features strict-invariants --lib snapshot
    cargo test -q -p sapla-index --features strict-invariants --test snapshot_props

# SIMD dispatch safety net: the whole suite pinned to the scalar
# kernels through the env override (the bit-identity contract means no
# result may change), then the quick perf grid with dispatch disabled.
simd-off:
    SAPLA_SIMD=off cargo test -q
    cargo bench -p sapla-bench --bench perf_json -- --quick --no-simd

# The full pre-merge gate.
ci: tier1 lint audit audit-model-serve obs serve-smoke metrics persist simd-off

# Regenerate every paper table/figure (slow; see EXPERIMENTS.md).
bench:
    cargo bench -p sapla-bench

# Quick thread-sweep of the parallel engine on the catalogue profile.
sweep:
    cargo bench -p sapla-bench --bench catalogue_profile

# Fast perf smoke: the reduced reduce/ingest/knn grid, JSON to stdout.
# (`--json <path>` writes a machine-readable report; BENCH_PR2.json holds
# the committed baseline-vs-optimised pair.)
bench-quick:
    cargo bench -p sapla-bench --bench perf_json -- --quick
