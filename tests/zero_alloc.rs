//! Steady-state allocation accounting for the SAPLA reduce kernel.
//!
//! This binary installs a counting global allocator and asserts that
//! `Sapla::reduce_into` with a warmed [`SaplaScratch`] performs **zero**
//! heap allocations — the contract the heap-driven refinement kernel and
//! the scratch workspace exist to provide. Kept as its own integration
//! test binary so no other test's allocations pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use sapla_core::sapla::{Sapla, SaplaScratch};
use sapla_core::TimeSeries;

/// `System`, but counting every allocation and reallocation.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn workload() -> Vec<(TimeSeries, Sapla)> {
    // Varying lengths and targets so the scratch's high-water marks are
    // exercised by more than one shape.
    [(96usize, 6usize), (257, 12), (400, 9), (64, 4), (512, 16)]
        .into_iter()
        .map(|(len, target)| {
            let v: Vec<f64> = (0..len)
                .map(|t| (t as f64 * 0.11).sin() * 8.0 + ((t * 37) % 11) as f64 * 0.5)
                .collect();
            (TimeSeries::new(v).unwrap(), Sapla::with_segments(target))
        })
        .collect()
}

#[test]
fn warmed_reduce_into_allocates_nothing() {
    let work = workload();
    let mut scratch = SaplaScratch::new();
    let mut buf = Vec::new();

    // Two warm-up passes over the *same* series set: the first grows every
    // buffer to its high-water mark, the second proves the marks are
    // stable (the kernel is deterministic, so pass three repeats pass two
    // allocation-for-allocation). With `obs` enabled the warm-up also
    // performs each call site's one-time registry push, so the measured
    // passes below hold the zero-alloc contract in *both* feature states.
    for _ in 0..2 {
        for (series, sapla) in &work {
            sapla.reduce_into(series, &mut scratch, &mut buf).unwrap();
        }
    }

    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    for (series, sapla) in &work {
        sapla.reduce_into(series, &mut scratch, &mut buf).unwrap();
    }
    let after = ALLOC_CALLS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "steady-state reduce_into performed {} heap allocations",
        after - before
    );
}

/// The planned `Dist_PAR` kernel's contract: once a query's plan is
/// compiled, per-candidate evaluation is a fused walk that buffers
/// nothing and is allocation-free — the property the per-worker scratch
/// reuse in the parallel k-NN engine depends on.
/// Exercised through both entry points (stored representation and SoA
/// view) with the abandon bound both infinite and finite.
#[test]
fn warmed_planned_dist_par_allocates_nothing() {
    use sapla_core::sapla::Sapla;
    use sapla_distance::{
        dist_par_sq_planned, dist_par_sq_planned_soa, safe_sq_bound, ParScratch, QueryPlan, SoaSegs,
    };

    let series: Vec<TimeSeries> = (0..6)
        .map(|i| {
            let v: Vec<f64> = (0..200)
                .map(|t| ((t as f64 + i as f64 * 13.0) * 0.09).sin() * 5.0 + i as f64)
                .collect();
            TimeSeries::new(v).unwrap()
        })
        .collect();
    let sapla = Sapla::with_segments(8);
    let reps: Vec<_> = series.iter().map(|s| sapla.reduce(s).unwrap()).collect();
    let cands: Vec<_> = reps[1..].to_vec();
    let plan = QueryPlan::new(&reps[0]);
    // Flattened SoA mirror of the candidates, like a leaf block.
    let flat: Vec<(Vec<f64>, Vec<f64>, Vec<usize>)> = cands
        .iter()
        .map(|c| {
            let segs = c.segments();
            (
                segs.iter().map(|s| s.a).collect(),
                segs.iter().map(|s| s.b).collect(),
                segs.iter().map(|s| s.r).collect(),
            )
        })
        .collect();
    let mut scratch = ParScratch::default();

    let run = |scratch: &mut ParScratch| {
        let mut acc = 0.0f64;
        for (c, (a, b, r)) in cands.iter().zip(&flat) {
            acc += dist_par_sq_planned(&plan, c, scratch, f64::INFINITY).unwrap();
            let view = SoaSegs::new(a, b, r).unwrap();
            acc += dist_par_sq_planned_soa(&plan, view, scratch, f64::INFINITY).unwrap();
            // Finite abandon bound: tight enough to trigger on some
            // candidates, exercising the sentinel path too.
            acc += dist_par_sq_planned(&plan, c, scratch, safe_sq_bound(4.0)).unwrap();
        }
        std::hint::black_box(acc);
    };

    // Warm-up: performs obs call-site registration when that feature is
    // on (the fused kernel itself has nothing to grow).
    run(&mut scratch);
    run(&mut scratch);

    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    run(&mut scratch);
    let after = ALLOC_CALLS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "steady-state planned Dist_PAR performed {} heap allocations",
        after - before
    );
}

/// Satellite of the sapla-obs PR: with the `obs` feature *off*, the
/// instrumented hot paths must behave as if the instrumentation were
/// never written — no metrics recorded, no span state, and (checked via
/// the counting allocator) not a single extra heap allocation from the
/// macros. The macros expand to `()` in this build, so this test is the
/// behavioural half of the zero-cost claim (the compiled-code half is
/// the BENCH_PR4.json before/after timing).
///
/// The test self-skips when the feature is on (e.g. the
/// `--features obs` CI matrix entry) — the instrumented build is
/// *allowed* to allocate once per call site at registration, which the
/// warm-up passes above absorb but this test exists to forbid entirely.
#[test]
fn obs_off_is_free() {
    if sapla_obs::enabled() {
        return;
    }
    let work = workload();
    let mut scratch = SaplaScratch::new();
    let mut buf = Vec::new();
    for _ in 0..2 {
        for (series, sapla) in &work {
            sapla.reduce_into(series, &mut scratch, &mut buf).unwrap();
        }
    }

    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    for (series, sapla) in &work {
        sapla.reduce_into(series, &mut scratch, &mut buf).unwrap();
    }
    // Capturing a snapshot in a disabled build must not allocate either:
    // there is no registry to walk.
    let snap = sapla_obs::Snapshot::capture();
    // The request-tracing surfaces are equally inert when disabled: the
    // flight recorder, the windowed sketches, and the obs clock all
    // compile to no-ops.
    let trace = sapla_obs::recorder::begin();
    sapla_obs::recorder::stage(trace, sapla_obs::recorder::Stage::Decode, 0, 1);
    sapla_obs::recorder::set_meta(trace, sapla_obs::recorder::Meta::K, 4);
    let total = sapla_obs::recorder::end(trace);
    sapla_obs::windowed!("zero.alloc.window", 0, 1);
    let clock = sapla_obs::clock::now_ns();
    let after = ALLOC_CALLS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "obs-off instrumented paths performed {} heap allocations",
        after - before
    );
    assert!(snap.is_empty(), "disabled build recorded metrics: {snap:?}");
    assert_eq!(sapla_obs::span_depth(), 0);
    assert_eq!(sapla_obs::worker::get(), 0);
    assert_eq!(trace, sapla_obs::recorder::TraceId::NONE);
    assert_eq!((total, clock), (0, 0));
    assert!(!sapla_obs::recorder::armed());
}
