//! Steady-state allocation accounting for the SAPLA reduce kernel.
//!
//! This binary installs a counting global allocator and asserts that
//! `Sapla::reduce_into` with a warmed [`SaplaScratch`] performs **zero**
//! heap allocations — the contract the heap-driven refinement kernel and
//! the scratch workspace exist to provide. Kept as its own integration
//! test binary so no other test's allocations pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use sapla_core::sapla::{Sapla, SaplaScratch};
use sapla_core::TimeSeries;

/// `System`, but counting every allocation and reallocation.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn workload() -> Vec<(TimeSeries, Sapla)> {
    // Varying lengths and targets so the scratch's high-water marks are
    // exercised by more than one shape.
    [(96usize, 6usize), (257, 12), (400, 9), (64, 4), (512, 16)]
        .into_iter()
        .map(|(len, target)| {
            let v: Vec<f64> = (0..len)
                .map(|t| (t as f64 * 0.11).sin() * 8.0 + ((t * 37) % 11) as f64 * 0.5)
                .collect();
            (TimeSeries::new(v).unwrap(), Sapla::with_segments(target))
        })
        .collect()
}

#[test]
fn warmed_reduce_into_allocates_nothing() {
    let work = workload();
    let mut scratch = SaplaScratch::new();
    let mut buf = Vec::new();

    // Two warm-up passes over the *same* series set: the first grows every
    // buffer to its high-water mark, the second proves the marks are
    // stable (the kernel is deterministic, so pass three repeats pass two
    // allocation-for-allocation).
    for _ in 0..2 {
        for (series, sapla) in &work {
            sapla.reduce_into(series, &mut scratch, &mut buf).unwrap();
        }
    }

    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    for (series, sapla) in &work {
        sapla.reduce_into(series, &mut scratch, &mut buf).unwrap();
    }
    let after = ALLOC_CALLS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "steady-state reduce_into performed {} heap allocations",
        after - before
    );
}
