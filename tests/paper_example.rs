//! The paper's printed worked example (Figs. 1, 5, 6, 8) — end-to-end
//! value checks against the published numbers.

use sapla_baselines::{all_reducers, Apla};
use sapla_core::sapla::Sapla;
use sapla_core::TimeSeries;

/// The series of Fig. 5a: {7, 8, 20, 15, 18, 8, 8, 15, 10, 1, 4, 3, 3, 5,
/// 4, 9, 2, 9, 10, 10}.
const FIG1: [f64; 20] = [
    7.0, 8.0, 20.0, 15.0, 18.0, 8.0, 8.0, 15.0, 10.0, 1.0, 4.0, 3.0, 3.0, 5.0, 4.0, 9.0, 2.0, 9.0,
    10.0, 10.0,
];

fn series() -> TimeSeries {
    TimeSeries::new(FIG1.to_vec()).unwrap()
}

fn sum_devs(lin: &sapla_core::PiecewiseLinear, s: &TimeSeries) -> f64 {
    lin.segment_deviations(s).unwrap().iter().sum()
}

#[test]
fn segment_counts_match_table_1() {
    // Same M = 12 ⇒ N = 4 for SAPLA/APLA, 6 for APCA/PLA, 12 for the rest.
    let s = series();
    let expected = [
        ("SAPLA", 4),
        ("APLA", 4),
        ("APCA", 6),
        ("PLA", 6),
        ("PAA", 12),
        ("PAALM", 12),
        ("CHEBY", 12),
        ("SAX", 12),
    ];
    for reducer in all_reducers() {
        let want = expected.iter().find(|(n, _)| *n == reducer.name()).unwrap().1;
        let rep = reducer.reduce(&s, 12).unwrap();
        assert_eq!(rep.num_segments(), want, "{}", reducer.name());
    }
}

#[test]
fn fig1_quality_ordering_holds() {
    // Fig. 1 reports sums of per-segment max deviations:
    // APLA 9.09 ≤ SAPLA 9.27 ≪ APCA 18.42 ≈ PLA 19.40.
    // Exact values depend on tie-breaking; the ordering and the ~2×
    // adaptive-vs-equal gap must reproduce.
    let s = series();
    let apla = Apla.reduce_to_segments(&s, 4).unwrap();
    let sapla = Sapla::with_coefficients(12).unwrap().reduce(&s).unwrap();
    let apla_sum = sum_devs(&apla, &s);
    let sapla_sum = sum_devs(&sapla, &s);
    assert!(apla_sum <= sapla_sum + 1e-9, "APLA is the optimum");
    let pla = sapla_baselines::Pla.reduce_to_segments(&s, 6).unwrap();
    let pla_sum = sum_devs(&pla, &s);
    assert!(
        sapla_sum < 0.75 * pla_sum,
        "SAPLA ({sapla_sum:.3}) should be well under PLA ({pla_sum:.3})"
    );
    // Sanity band around the published magnitudes.
    assert!(apla_sum > 4.0 && apla_sum < 12.0, "APLA sum {apla_sum}");
    assert!(pla_sum > 14.0 && pla_sum < 24.0, "PLA sum {pla_sum}");
}

#[test]
fn apla_reported_optimum_is_reachable() {
    // The paper's APLA achieves max deviation ≈ 9.09 with 4 segments; our
    // DP optimises the same objective and must do at least as well.
    let s = series();
    let apla = Apla.reduce_to_segments(&s, 4).unwrap();
    assert!(sum_devs(&apla, &s) <= 9.0909 + 1e-3);
}

#[test]
fn initialization_produces_the_papers_segment_count_ballpark() {
    // Fig. 5: the paper's initialization produces 6 segments for N = 4.
    // Ours produces at least N (the cut policy differs in tie-breaking).
    use sapla_core::sapla::SaplaConfig;
    let init_only = SaplaConfig {
        refine_split_merge: false,
        max_refine_rounds: 0,
        endpoint_movement: false,
        ..SaplaConfig::default()
    };
    let rep = Sapla::with_segments(4).with_config(init_only).reduce(&series()).unwrap();
    // After the forced merge-to-N the representation has exactly 4.
    assert_eq!(rep.num_segments(), 4);
    assert_eq!(rep.series_len(), 20);
}

#[test]
fn paper_reported_sapla_band() {
    // Fig. 8: SAPLA's final max deviation on the example is 9.27273 in
    // the paper. Our tie-breaking lands in the same band or better, and
    // far below the APCA/PLA equal-budget results (18.4 / 19.4 as sums).
    let s = series();
    let rep = Sapla::with_coefficients(12).unwrap().reduce(&s).unwrap();
    let sum = sum_devs(&rep, &s);
    assert!(sum <= 12.0, "SAPLA Fig.1 sum-of-deviations {sum}");
    let max = rep.max_deviation(&s).unwrap();
    assert!(max <= 9.3 + 3.0, "SAPLA Fig.8 max deviation {max}");
}
