//! Integration: R-tree and DBCH-tree k-NN over catalogue datasets, for
//! every indexing scheme, against exact ground truth.

use sapla_baselines::all_reducers;
use sapla_data::{catalogue, Protocol};
use sapla_index::{linear_scan_knn, scheme_for, DbchTree, NodeDistRule, Query, RTree};

fn protocol() -> Protocol {
    Protocol { series_len: 128, series_per_dataset: 30, queries_per_dataset: 2 }
}

#[test]
fn both_trees_index_every_method_and_answer_knn() {
    let ds = catalogue()[2].load(&protocol());
    let k = 5;
    for reducer in all_reducers() {
        let scheme = scheme_for(reducer.name()).unwrap();
        let reps: Vec<_> = ds.series.iter().map(|s| reducer.reduce(s, 12).unwrap()).collect();
        let rtree = RTree::build(scheme.as_ref(), reps.clone(), 2, 5).unwrap();
        let dbch = DbchTree::build(scheme.as_ref(), reps, 2, 5).unwrap();
        assert_eq!(rtree.shape().entries, 30, "{}", reducer.name());
        assert_eq!(dbch.shape().entries, 30, "{}", reducer.name());

        for qraw in &ds.queries {
            let q = Query::new(qraw, reducer.as_ref(), 12).unwrap();
            for (tree_name, stats) in [
                ("rtree", rtree.knn(&q, k, scheme.as_ref(), &ds.series).unwrap()),
                ("dbch", dbch.knn(&q, k, scheme.as_ref(), &ds.series).unwrap()),
            ] {
                assert_eq!(
                    stats.retrieved.len(),
                    k,
                    "{}/{tree_name} returned wrong k",
                    reducer.name()
                );
                assert!(stats.measured >= k, "must refine at least k candidates");
                assert!(stats.measured <= 30);
                // Retrieved distances are exact Euclidean distances and
                // sorted ascending.
                for (i, &id) in stats.retrieved.iter().enumerate() {
                    let d = qraw.euclidean(&ds.series[id]).unwrap();
                    assert!((d - stats.distances[i]).abs() < 1e-9);
                }
                assert!(stats.distances.windows(2).all(|w| w[0] <= w[1]));
            }
        }
    }
}

#[test]
fn rtree_with_true_lower_bounds_is_exact() {
    // PAA / PLA / CHEBY / SAX have unconditional lower bounds at both the
    // node and leaf level, so GEMINI guarantees no false dismissals: the
    // retrieved set must equal the exact k-NN.
    let ds = catalogue()[5].load(&protocol());
    let k = 4;
    for reducer in all_reducers() {
        if !matches!(reducer.name(), "PAA" | "PLA" | "CHEBY" | "SAX") {
            continue;
        }
        let scheme = scheme_for(reducer.name()).unwrap();
        let reps: Vec<_> = ds.series.iter().map(|s| reducer.reduce(s, 12).unwrap()).collect();
        let rtree = RTree::build(scheme.as_ref(), reps, 2, 5).unwrap();
        for qraw in &ds.queries {
            let q = Query::new(qraw, reducer.as_ref(), 12).unwrap();
            let stats = rtree.knn(&q, k, scheme.as_ref(), &ds.series).unwrap();
            let truth = ds.exact_knn(qraw, k);
            assert_eq!(
                stats.accuracy(&truth),
                1.0,
                "{}: retrieved {:?} vs truth {truth:?}",
                reducer.name(),
                stats.retrieved
            );
        }
    }
}

#[test]
fn dbch_improves_or_matches_rtree_for_adaptive_methods() {
    // The paper's headline index result (Fig. 13): averaged over
    // homogeneous datasets, DBCH prunes at least as well as the R-tree
    // with APCA-style MBRs for the adaptive methods.
    let specs = catalogue();
    let k = 4;
    let mut rho_r = 0.0;
    let mut rho_d = 0.0;
    let mut count = 0.0;
    for spec in specs.iter().take(6) {
        let ds = spec.load(&protocol());
        for reducer in all_reducers() {
            if !matches!(reducer.name(), "SAPLA" | "APCA") {
                continue;
            }
            let scheme = scheme_for(reducer.name()).unwrap();
            let reps: Vec<_> = ds.series.iter().map(|s| reducer.reduce(s, 12).unwrap()).collect();
            let rtree = RTree::build(scheme.as_ref(), reps.clone(), 2, 5).unwrap();
            let dbch = DbchTree::build(scheme.as_ref(), reps, 2, 5).unwrap();
            for qraw in &ds.queries {
                let q = Query::new(qraw, reducer.as_ref(), 12).unwrap();
                rho_r += rtree.knn(&q, k, scheme.as_ref(), &ds.series).unwrap().pruning_power();
                rho_d += dbch.knn(&q, k, scheme.as_ref(), &ds.series).unwrap().pruning_power();
                count += 1.0;
            }
        }
    }
    rho_r /= count;
    rho_d /= count;
    assert!(
        rho_d <= rho_r + 0.05,
        "DBCH mean ρ {rho_d:.3} should not be worse than R-tree {rho_r:.3}"
    );
}

#[test]
fn triangle_rule_dbch_with_lb_distances_loses_no_true_neighbour_often() {
    // Statistical sanity for the conservative node rule: accuracy stays
    // high across datasets.
    let spec = &catalogue()[1];
    let ds = spec.load(&protocol());
    let reducer = all_reducers().into_iter().find(|r| r.name() == "SAPLA").unwrap();
    let scheme = scheme_for("SAPLA").unwrap();
    let reps: Vec<_> = ds.series.iter().map(|s| reducer.reduce(s, 12).unwrap()).collect();
    let tree =
        DbchTree::build_with_rule(scheme.as_ref(), reps, 2, 5, NodeDistRule::Triangle).unwrap();
    let mut acc = 0.0;
    for qraw in &ds.queries {
        let q = Query::new(qraw, reducer.as_ref(), 12).unwrap();
        let stats = tree.knn(&q, 4, scheme.as_ref(), &ds.series).unwrap();
        acc += stats.accuracy(&ds.exact_knn(qraw, 4));
    }
    acc /= ds.queries.len() as f64;
    assert!(acc >= 0.5, "triangle-rule DBCH accuracy {acc}");
}

#[test]
fn linear_scan_agrees_with_dataset_ground_truth() {
    let ds = catalogue()[7].load(&protocol());
    for qraw in &ds.queries {
        let scan = linear_scan_knn(qraw, &ds.series, 6).unwrap();
        assert_eq!(scan.retrieved, ds.exact_knn(qraw, 6));
    }
}

#[test]
fn fill_factors_shape_the_tree() {
    let ds = catalogue()[0].load(&protocol());
    let reducer = all_reducers().into_iter().find(|r| r.name() == "PAA").unwrap();
    let scheme = scheme_for("PAA").unwrap();
    let reps: Vec<_> = ds.series.iter().map(|s| reducer.reduce(s, 12).unwrap()).collect();
    let small = RTree::build(scheme.as_ref(), reps.clone(), 2, 5).unwrap();
    let large = RTree::build(scheme.as_ref(), reps, 4, 10).unwrap();
    assert!(
        large.shape().total_nodes() <= small.shape().total_nodes(),
        "bigger pages → fewer nodes"
    );
    assert!(large.shape().height <= small.shape().height);
}
