//! End-to-end pins for the SIMD dispatch and query-major batching:
//! whatever SIMD level is forced and however queries are blocked, every
//! search path — DBCH-tree, R-tree, sharded engine, filtered linear
//! scan — must return bit-for-bit the scalar query-at-a-time answers.
//!
//! Everything runs inside one `#[test]` because `simd::force` is
//! process-global: parallel test threads would race the dispatch level.

use sapla_baselines::{Reducer, SaplaReducer};
use sapla_core::simd::{self, supported_levels, SimdLevel};
use sapla_core::TimeSeries;
use sapla_index::{
    filtered_scan_knn, filtered_scan_knn_batch, knn_batch_with_block, prepare_queries, scheme_for,
    DbchTree, Engine, EngineConfig, RTree, SearchStats, TreeKind,
};

fn dataset(n_series: usize, len: usize) -> Vec<TimeSeries> {
    (0..n_series)
        .map(|i| {
            TimeSeries::new(
                (0..len)
                    .map(|t| {
                        ((t + i * 11) as f64 * 0.17).sin() * (1.0 + (i % 5) as f64 * 0.2)
                            + (i as f64 * 0.61).sin() * 0.5
                    })
                    .collect(),
            )
            .unwrap()
            .znormalized()
        })
        .collect()
}

fn assert_bitwise_eq(got: &[SearchStats], want: &[SearchStats], what: &str) {
    assert_eq!(got, want, "{what}");
    for (g, w) in got.iter().zip(want) {
        for (gd, wd) in g.distances.iter().zip(&w.distances) {
            assert_eq!(gd.to_bits(), wd.to_bits(), "{what}");
        }
    }
}

#[test]
fn every_simd_level_and_block_size_matches_scalar_query_at_a_time() {
    let raws = dataset(48, 64);
    let reducer = SaplaReducer::new();
    let scheme = scheme_for("SAPLA").unwrap();
    let reps: Vec<_> = raws.iter().map(|s| reducer.reduce(s, 12).unwrap()).collect();
    let dbch = DbchTree::build(scheme.as_ref(), reps.clone(), 2, 5).unwrap();
    let rtree = RTree::build(scheme.as_ref(), reps.clone(), 2, 5).unwrap();
    let sharded = Engine::build(
        EngineConfig { shards: 3, tree: TreeKind::Dbch, ..EngineConfig::default() },
        Box::new(SaplaReducer::new()),
        raws.clone(),
        2,
    )
    .unwrap();
    let queries = prepare_queries(&raws[..11], &reducer, 12, 2).unwrap();

    // Scalar query-at-a-time references for every path.
    simd::force(SimdLevel::Scalar).unwrap();
    let dbch_ref: Vec<SearchStats> =
        queries.iter().map(|q| dbch.knn(q, 5, scheme.as_ref(), &raws).unwrap()).collect();
    let rtree_ref: Vec<SearchStats> =
        queries.iter().map(|q| rtree.knn(q, 5, scheme.as_ref(), &raws).unwrap()).collect();
    let scan_ref: Vec<SearchStats> = queries
        .iter()
        .map(|q| filtered_scan_knn(q, &reps, &raws, 5, scheme.as_ref()).unwrap())
        .collect();
    let (sharded_ref, _) = sharded.knn(&queries, 5, 1).unwrap();

    for level in supported_levels() {
        simd::force(level).unwrap();
        let name = level.name();
        // Query-at-a-time under the forced level.
        let dbch_seq: Vec<SearchStats> =
            queries.iter().map(|q| dbch.knn(q, 5, scheme.as_ref(), &raws).unwrap()).collect();
        assert_bitwise_eq(&dbch_seq, &dbch_ref, name);
        // Query-major over the DBCH-tree at several block sizes and
        // thread counts.
        for block in [1usize, 4, 16] {
            for threads in [1usize, 2, 4, 7] {
                let (got, _) = knn_batch_with_block(
                    &dbch,
                    &queries,
                    5,
                    scheme.as_ref(),
                    &raws,
                    threads,
                    block,
                )
                .unwrap();
                assert_bitwise_eq(&got, &dbch_ref, &format!("{name} block {block} x{threads}"));
            }
        }
        // Query-major over the R-tree (and the sharded merge) via the
        // engine's scatter path.
        for threads in [1usize, 2, 4, 7] {
            let (got, _) = sharded.knn(&queries, 5, threads).unwrap();
            assert_bitwise_eq(&got, &sharded_ref, &format!("{name} sharded x{threads}"));
        }
        let rtree_got: Vec<SearchStats> =
            queries.iter().map(|q| rtree.knn(q, 5, scheme.as_ref(), &raws).unwrap()).collect();
        assert_bitwise_eq(&rtree_got, &rtree_ref, name);
        // Candidate-major filtered scan.
        let scan_got = filtered_scan_knn_batch(&queries, &reps, &raws, 5, scheme.as_ref()).unwrap();
        assert_bitwise_eq(&scan_got, &scan_ref, name);
    }
    // Leave the process on the auto-detected level for any later tests.
    simd::force(simd::detect()).unwrap();
}
