//! Cross-measure axioms and diagnostics over catalogue data: identity,
//! symmetry, and the tightness ordering the paper establishes
//! (`Dist_LB ≤ Dist_PAR ≲ Dist ≲ Dist_AE` on average).

use sapla_baselines::{all_reducers, Reducer, SaplaReducer};
use sapla_core::Representation;
use sapla_data::{catalogue, Protocol};
use sapla_distance::{dist_ae, dist_lb, dist_par, dtw, euclidean, lb_keogh, rep_distance};

fn protocol() -> Protocol {
    Protocol { series_len: 96, series_per_dataset: 6, queries_per_dataset: 2 }
}

#[test]
fn rep_distance_identity_and_symmetry_for_every_method() {
    let ds = catalogue()[4].load(&protocol());
    for reducer in all_reducers() {
        let reps: Vec<Representation> =
            ds.series.iter().map(|s| reducer.reduce(s, 12).unwrap()).collect();
        for (i, a) in reps.iter().enumerate() {
            // Identity: d(x, x) = 0.
            assert!(rep_distance(a, a).unwrap() < 1e-9, "{}: d(x,x) != 0", reducer.name());
            for b in &reps[i + 1..] {
                let ab = rep_distance(a, b).unwrap();
                let ba = rep_distance(b, a).unwrap();
                assert!((ab - ba).abs() < 1e-9, "{}: asymmetric", reducer.name());
                assert!(ab >= 0.0 && ab.is_finite());
            }
        }
    }
}

#[test]
fn rep_distance_triangle_inequality_holds_for_linear_reps() {
    // Dist_PAR is the Euclidean distance between reconstructions, so it is
    // a true metric on representations — the property the DBCH triangle
    // rule relies on.
    let ds = catalogue()[8].load(&protocol());
    let reducer = SaplaReducer::new();
    let reps: Vec<Representation> =
        ds.series.iter().map(|s| reducer.reduce(s, 12).unwrap()).collect();
    for a in 0..reps.len() {
        for b in 0..reps.len() {
            for c in 0..reps.len() {
                let ab =
                    dist_par(reps[a].as_linear().unwrap(), reps[b].as_linear().unwrap()).unwrap();
                let bc =
                    dist_par(reps[b].as_linear().unwrap(), reps[c].as_linear().unwrap()).unwrap();
                let ac =
                    dist_par(reps[a].as_linear().unwrap(), reps[c].as_linear().unwrap()).unwrap();
                assert!(ac <= ab + bc + 1e-9, "triangle violated: {ac} > {ab} + {bc}");
            }
        }
    }
}

#[test]
fn tightness_ordering_on_average() {
    let reducer = SaplaReducer::new();
    let (mut lb_sum, mut par_sum, mut exact_sum, mut ae_sum) = (0.0, 0.0, 0.0, 0.0);
    for spec in catalogue().iter().take(12) {
        let ds = spec.load(&protocol());
        let q = &ds.queries[0];
        let q_sums = q.prefix_sums();
        for s in &ds.series {
            let c_rep = reducer.reduce(s, 12).unwrap();
            let c_lin = c_rep.as_linear().unwrap();
            let q_rep = reducer.reduce(q, 12).unwrap();
            lb_sum += dist_lb(&q_sums, c_lin).unwrap();
            par_sum += dist_par(q_rep.as_linear().unwrap(), c_lin).unwrap();
            exact_sum += euclidean(q, s).unwrap();
            ae_sum += dist_ae(q, c_lin).unwrap();
        }
    }
    assert!(lb_sum < par_sum, "LB should be loosest");
    assert!(par_sum < ae_sum, "AE should exceed PAR on average");
    assert!(par_sum < exact_sum * 1.05, "PAR tracks the exact distance");
    assert!((0.9..1.25).contains(&(ae_sum / exact_sum)), "AE tracks the exact distance");
}

#[test]
fn dtw_is_bounded_by_euclidean_and_above_lb_keogh() {
    let ds = catalogue()[3].load(&protocol());
    let q = &ds.queries[0];
    for s in &ds.series {
        let euc = euclidean(q, s).unwrap();
        for band in [2usize, 6, 12] {
            let warped = dtw(q, s, band).unwrap();
            assert!(warped <= euc + 1e-9, "DTW can only shrink Euclid");
            let lb = lb_keogh(q, s, band).unwrap();
            assert!(lb <= warped + 1e-9, "LB_Keogh must lower-bound DTW");
        }
    }
}

#[test]
fn reduced_space_distances_shrink_with_budget() {
    // More coefficients → reconstructions approach the originals → the
    // Dist_AE estimate converges toward the exact distance.
    let ds = catalogue()[0].load(&protocol());
    let reducer = SaplaReducer::new();
    let (q, s) = (&ds.queries[0], &ds.series[0]);
    let exact = euclidean(q, s).unwrap();
    let mut last_err = f64::INFINITY;
    for m in [6usize, 12, 24, 48] {
        let c_rep = reducer.reduce(s, m).unwrap();
        let ae = dist_ae(q, c_rep.as_linear().unwrap()).unwrap();
        let err = (ae - exact).abs();
        assert!(
            err <= last_err + 0.35 * exact,
            "M={m}: error {err} regressed far beyond {last_err}"
        );
        last_err = last_err.min(err);
    }
    assert!(last_err < 0.35 * exact, "residual error {last_err} vs exact {exact}");
}
