//! Cross-crate integration: every reduction method over every signal
//! family, at every coefficient budget of the paper's protocol.

use sapla_baselines::all_reducers;
use sapla_core::{Representation, TimeSeries};
use sapla_data::generators::{generate, Family};

fn family_series(n: usize) -> Vec<(Family, TimeSeries)> {
    Family::ALL.iter().map(|&f| (f, generate(f, 1, 7, n))).collect()
}

#[test]
fn every_method_reduces_every_family_at_every_budget() {
    for (family, series) in family_series(256) {
        for reducer in all_reducers() {
            for &m in &[12usize, 18, 24] {
                let rep = reducer
                    .reduce(&series, m)
                    .unwrap_or_else(|e| panic!("{} on {:?} at M={m}: {e}", reducer.name(), family));
                assert_eq!(rep.series_len(), 256, "{} covers the series", reducer.name());
                let expected_n = m / reducer.coeffs_per_segment();
                assert_eq!(
                    rep.num_segments(),
                    expected_n,
                    "{} segment count at M={m}",
                    reducer.name()
                );
                let dev = reducer.max_deviation(&series, &rep).unwrap();
                assert!(dev.is_finite() && dev >= 0.0);
            }
        }
    }
}

#[test]
fn reconstruction_length_matches_input() {
    for (_, series) in family_series(193) {
        for reducer in all_reducers() {
            // 193 is awkward (prime): exercises uneven windows and Haar
            // padding. M = 12 divides every method's per-segment count.
            let rep = reducer.reduce(&series, 12).unwrap();
            let rec = reducer.reconstruct(&rep).unwrap();
            assert_eq!(rec.len(), 193, "{}", reducer.name());
        }
    }
}

#[test]
fn all_methods_are_deterministic() {
    let series = generate(Family::NoisyPeriodic, 3, 11, 300);
    for reducer in all_reducers() {
        let a = reducer.reduce(&series, 12).unwrap();
        let b = reducer.reduce(&series, 12).unwrap();
        assert_eq!(a, b, "{} must be deterministic", reducer.name());
    }
}

#[test]
fn adaptive_methods_win_on_regime_switching_data() {
    // The paper's motivating case: EOG-like regularly changing series.
    // Compare mean max deviation over several Burst series at M = 24.
    let mut dev: std::collections::HashMap<&str, f64> = std::collections::HashMap::new();
    let trials = 8;
    for seed in 0..trials {
        let series = generate(Family::Burst, 2, seed, 512);
        for reducer in all_reducers() {
            if matches!(reducer.name(), "SAX" | "APLA") {
                continue; // SAX excluded from deviation; APLA too slow here
            }
            let rep = reducer.reduce(&series, 24).unwrap();
            *dev.entry(reducer.name()).or_default() +=
                reducer.max_deviation(&series, &rep).unwrap() / trials as f64;
        }
    }
    let sapla = dev["SAPLA"];
    for method in ["PAA", "PAALM"] {
        assert!(
            sapla < dev[method],
            "SAPLA ({sapla:.4}) should beat {method} ({:.4}) on Burst data",
            dev[method]
        );
    }
}

#[test]
fn budget_validation_is_uniform() {
    let series = generate(Family::SmoothPeriodic, 0, 0, 64);
    for reducer in all_reducers() {
        assert!(reducer.reduce(&series, 0).is_err(), "{} accepts M=0", reducer.name());
        let per = reducer.coeffs_per_segment();
        if per > 1 {
            assert!(
                reducer.reduce(&series, per + 1).is_err(),
                "{} accepts indivisible budget",
                reducer.name()
            );
        }
    }
}

#[test]
fn linear_views_preserve_reconstructions() {
    // Constant representations viewed as linear must reconstruct
    // identically (this is what lets Dist_PAR serve APCA/PAA).
    let series = generate(Family::PiecewiseConstant, 4, 3, 200);
    for reducer in all_reducers() {
        let rep = reducer.reduce(&series, 12).unwrap();
        if let Representation::Constant(c) = &rep {
            let lin = c.to_linear();
            assert_eq!(lin.reconstruct().values(), c.reconstruct().values(), "{}", reducer.name());
        }
    }
}
