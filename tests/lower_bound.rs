//! Property-based verification of the lower-bounding lemmas (Section 5 and
//! Appendix A of the paper) across randomly generated series pairs.

use proptest::prelude::*;
use sapla_baselines::{Cheby, Paa, Pla, Reducer, SaplaReducer, Sax};
use sapla_core::sapla::Sapla;
use sapla_core::TimeSeries;
use sapla_distance::{dist_cheby, dist_lb, dist_paa, dist_par, dist_pla, euclidean, mindist};

/// Strategy: a z-normalised series of length `n` assembled from a few
/// random regimes (so segmentations are non-trivial).
fn series_strategy(n: usize) -> impl Strategy<Value = TimeSeries> {
    (
        proptest::collection::vec(-5.0f64..5.0, 6),
        proptest::collection::vec(-0.5f64..0.5, 6),
        0.0f64..std::f64::consts::TAU,
    )
        .prop_map(move |(levels, slopes, phase)| {
            let per = n / levels.len();
            let values: Vec<f64> = (0..n)
                .map(|t| {
                    let reg = (t / per.max(1)).min(levels.len() - 1);
                    levels[reg]
                        + slopes[reg] * (t % per.max(1)) as f64
                        + 0.3 * ((t as f64) * 0.9 + phase).sin()
                })
                .collect();
            TimeSeries::new(values).unwrap().znormalized()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `Dist_LB` is an unconditional lower bound (Appendix A.5 argument
    /// applied to the candidate's own windows).
    #[test]
    fn dist_lb_lower_bounds_euclidean(
        q in series_strategy(96),
        c in series_strategy(96),
        segs in 2usize..8,
    ) {
        let c_rep = Sapla::with_segments(segs).reduce(&c).unwrap();
        let lb = dist_lb(&q.prefix_sums(), &c_rep).unwrap();
        let exact = euclidean(&q, &c).unwrap();
        prop_assert!(lb <= exact + 1e-9, "lb {lb} > exact {exact}");
    }

    /// `Dist_PAA` (Keogh's lemma).
    #[test]
    fn dist_paa_lower_bounds_euclidean(
        q in series_strategy(96),
        c in series_strategy(96),
        segs in 2usize..12,
    ) {
        let qr = Paa.reduce_to_segments(&q, segs).unwrap();
        let cr = Paa.reduce_to_segments(&c, segs).unwrap();
        let lb = dist_paa(&qr, &cr).unwrap();
        let exact = euclidean(&q, &c).unwrap();
        prop_assert!(lb <= exact + 1e-9);
    }

    /// `Dist_PLA` (Chen et al.'s lemma).
    #[test]
    fn dist_pla_lower_bounds_euclidean(
        q in series_strategy(96),
        c in series_strategy(96),
        segs in 2usize..10,
    ) {
        let qr = Pla.reduce_to_segments(&q, segs).unwrap();
        let cr = Pla.reduce_to_segments(&c, segs).unwrap();
        let lb = dist_pla(&qr, &cr).unwrap();
        let exact = euclidean(&q, &c).unwrap();
        prop_assert!(lb <= exact + 1e-9);
    }

    /// CHEBY coefficient distance (Parseval).
    #[test]
    fn dist_cheby_lower_bounds_euclidean(
        q in series_strategy(96),
        c in series_strategy(96),
        k in 2usize..20,
    ) {
        let qc = Cheby.reduce_to_coeffs(&q, k).unwrap();
        let cc = Cheby.reduce_to_coeffs(&c, k).unwrap();
        let lb = dist_cheby(&qc, &cc);
        let exact = euclidean(&q, &c).unwrap();
        prop_assert!(lb <= exact + 1e-9);
    }

    /// SAX MINDIST (Lin et al.'s lemma; requires z-normalised input,
    /// which the strategy provides).
    #[test]
    fn sax_mindist_lower_bounds_euclidean(
        q in series_strategy(96),
        c in series_strategy(96),
        w in 2usize..16,
    ) {
        let sax = Sax::default();
        let qw = sax.reduce_to_word(&q, w).unwrap();
        let cw = sax.reduce_to_word(&c, w).unwrap();
        let lb = mindist(&qw, &cw).unwrap();
        let exact = euclidean(&q, &c).unwrap();
        prop_assert!(lb <= exact + 1e-9);
    }

    /// `Dist_PAR` tightness sandwich: at least as tight as `Dist_LB` when
    /// both operands share a segmentation structure, and never wildly
    /// above the Euclidean distance (the conditional lemma; we allow the
    /// small overshoot the paper's accuracy < 1 implies).
    #[test]
    fn dist_par_is_tight_and_nearly_lower_bounding(
        q in series_strategy(96),
        c in series_strategy(96),
        segs in 2usize..8,
    ) {
        let qr = Sapla::with_segments(segs).reduce(&q).unwrap();
        let cr = Sapla::with_segments(segs).reduce(&c).unwrap();
        let par = dist_par(&qr, &cr).unwrap();
        let exact = euclidean(&q, &c).unwrap();
        prop_assert!(par <= exact * 2.5 + 1e-6,
            "Dist_PAR {par} far above Euclid {exact}");
        // And it is exactly the distance between the two reconstructions.
        let brute = euclidean(&qr.reconstruct(), &cr.reconstruct()).unwrap();
        prop_assert!((par - brute).abs() < 1e-6);
    }
}

/// Statistical check over the catalogue (non-proptest): `Dist_PAR`
/// violates the Euclidean bound rarely and mildly, while `Dist_LB` never
/// does — the measured companion to Appendix A.5/A.6.
#[test]
fn dist_par_violation_rate_is_small_on_catalogue_data() {
    let reducer = SaplaReducer::new();
    let specs = sapla_data::catalogue();
    let protocol =
        sapla_data::Protocol { series_len: 128, series_per_dataset: 6, queries_per_dataset: 2 };
    let mut pairs = 0usize;
    let mut violations = 0usize;
    let mut worst: f64 = 0.0;
    for spec in specs.iter().take(16) {
        let ds = spec.load(&protocol);
        for q in &ds.queries {
            let q_rep = reducer.reduce(q, 12).unwrap();
            let q_lin = q_rep.as_linear().unwrap();
            for s in &ds.series {
                let c_rep = reducer.reduce(s, 12).unwrap();
                let c_lin = c_rep.as_linear().unwrap();
                let par = dist_par(q_lin, c_lin).unwrap();
                let exact = euclidean(q, s).unwrap();
                let lb = dist_lb(&q.prefix_sums(), c_lin).unwrap();
                assert!(lb <= exact + 1e-9, "Dist_LB must never violate");
                pairs += 1;
                if par > exact {
                    violations += 1;
                    worst = worst.max(par / exact - 1.0);
                }
            }
        }
    }
    // Measured reality of the conditional lemma (Appendix A.5 assumes
    // compatible segmentations): on coarse reps (N = 4 over n = 128) of
    // noisy families, roughly one pair in five overshoots, occasionally
    // by a large factor — consistent with the paper's own accuracy < 1.
    // Dist_LB (asserted above) never violates.
    let rate = violations as f64 / pairs as f64;
    assert!(rate < 0.30, "Dist_PAR violation rate {rate} over {pairs} pairs");
    assert!(worst < 1.5, "worst Dist_PAR overshoot {worst}");
}
