//! Integration: the downstream mining tasks end-to-end on catalogue data.

use sapla_baselines::{reduce_batch_parallel, Reducer, SaplaReducer};
use sapla_core::codec::{decode_collection, encode_collection};
use sapla_data::{catalogue, Protocol};
use sapla_mining::{
    best_matches, change_points, find_motif, k_medoids, top_discords, KnnClassifier,
};

fn protocol() -> Protocol {
    Protocol { series_len: 128, series_per_dataset: 12, queries_per_dataset: 2 }
}

#[test]
fn classification_across_catalogue_families() {
    // Train on two structurally different datasets, evaluate on held-out
    // series of the same datasets.
    let cat = catalogue();
    let smooth = cat.iter().find(|d| d.name == "SmoothPeriodic_00").unwrap();
    let walk = cat.iter().find(|d| d.name == "RandomWalk_00").unwrap();
    let big = Protocol { series_len: 128, series_per_dataset: 20, queries_per_dataset: 1 };
    let (a, b) = (smooth.load(&big), walk.load(&big));

    let mut train = Vec::new();
    let mut eval = Vec::new();
    for (i, s) in a.series.iter().enumerate() {
        (if i < 14 { &mut train } else { &mut eval }).push((s.clone(), 0usize));
    }
    for (i, s) in b.series.iter().enumerate() {
        (if i < 14 { &mut train } else { &mut eval }).push((s.clone(), 1usize));
    }
    let mut clf = KnnClassifier::new(Box::new(SaplaReducer::new()), 12);
    clf.fit(&train).unwrap();
    let acc = clf.accuracy(&eval, 3).unwrap();
    assert!(acc >= 0.75, "accuracy {acc}");
}

#[test]
fn clustering_separates_two_datasets() {
    let cat = catalogue();
    let a = cat.iter().find(|d| d.name == "PiecewiseConstant_00").unwrap().load(&protocol());
    let b = cat.iter().find(|d| d.name == "RandomWalk_00").unwrap().load(&protocol());
    let reducer = SaplaReducer::new();
    let reps: Vec<_> =
        a.series.iter().chain(&b.series).map(|s| reducer.reduce(s, 12).unwrap()).collect();
    let c = k_medoids(&reps, 2, 10).unwrap();
    assert_eq!(c.assignment.len(), 24);
    // Both clusters are populated.
    assert!(!c.members(0).is_empty() && !c.members(1).is_empty());
}

#[test]
fn discords_and_motifs_compose_with_codec_roundtrips() {
    // Persist reduced series, reload, and keep mining — the storage story.
    let ds = catalogue()[6].load(&protocol());
    let reducer = SaplaReducer::new();
    let reps = reduce_batch_parallel(&reducer, &ds.series, 12, 4).unwrap();

    let blob = encode_collection(&reps).unwrap();
    let reloaded = decode_collection(&blob).unwrap();
    assert_eq!(reloaded, reps);

    let discords = top_discords(&reloaded, 3).unwrap();
    assert_eq!(discords.len(), 3);

    let motif = find_motif(&ds.series, &reloaded, 1.0).unwrap();
    assert!(motif.a < motif.b);
    assert!(motif.distance.is_finite());
}

#[test]
fn segmentation_tracks_regime_changes() {
    // A synthetic three-regime series through the public API.
    let mut v: Vec<f64> = (0..100).map(|t| 0.1 * t as f64).collect();
    v.extend(std::iter::repeat_n(10.0, 100));
    v.extend((0..100).map(|t| 10.0 - 0.2 * t as f64));
    let series = sapla_core::TimeSeries::new(v).unwrap();
    let cps = change_points(&series, 2).unwrap();
    assert_eq!(cps.len(), 2);
    assert!((cps[0] as isize - 99).abs() <= 4, "{cps:?}");
    assert!((cps[1] as isize - 199).abs() <= 4, "{cps:?}");
}

#[test]
fn subsequence_search_on_catalogue_stream() {
    // Concatenate a dataset into one long stream and find a window of it.
    let ds = catalogue()[1].load(&protocol());
    let mut long = Vec::new();
    for s in &ds.series {
        long.extend_from_slice(s.values());
    }
    let haystack = sapla_core::TimeSeries::new(long).unwrap();
    let offset = 3 * 128 + 40;
    let query =
        sapla_core::TimeSeries::new(haystack.values()[offset..offset + 64].to_vec()).unwrap();
    let hits = best_matches(&haystack, &query, &SaplaReducer::new(), 12, 4, 1, 6).unwrap();
    assert_eq!(hits.len(), 1);
    assert!(hits[0].offset.abs_diff(offset) <= 4, "found {} expected {offset}", hits[0].offset);
}
