//! The evaluation substrate: catalogue integrity, protocol handling and
//! the UCR loader.

use sapla_data::{catalogue, Family, Protocol};

#[test]
fn catalogue_matches_the_papers_dataset_count() {
    // 117 equal-length UCR-2018 datasets.
    assert_eq!(catalogue().len(), 117);
}

#[test]
fn paper_protocol_dimensions() {
    let p = Protocol::paper();
    assert_eq!(p.series_len, 1024);
    assert_eq!(p.series_per_dataset, 100);
    assert_eq!(p.queries_per_dataset, 5);
}

#[test]
fn every_family_is_represented_and_loads() {
    let protocol = Protocol { series_len: 96, series_per_dataset: 4, queries_per_dataset: 1 };
    let cat = catalogue();
    for family in Family::ALL {
        let spec = cat
            .iter()
            .find(|d| d.family == family)
            .unwrap_or_else(|| panic!("family {} missing from catalogue", family.name()));
        let ds = spec.load(&protocol);
        assert_eq!(ds.series.len(), 4);
        assert_eq!(ds.queries.len(), 1);
        for s in ds.series.iter().chain(&ds.queries) {
            assert_eq!(s.len(), 96);
            // z-normalised by construction.
            assert!(s.mean().abs() < 1e-9);
        }
    }
}

#[test]
fn dataset_series_within_a_family_variant_differ() {
    let protocol = Protocol { series_len: 64, series_per_dataset: 8, queries_per_dataset: 2 };
    let ds = catalogue()[3].load(&protocol);
    for i in 0..ds.series.len() {
        for j in (i + 1)..ds.series.len() {
            assert_ne!(ds.series[i], ds.series[j], "series {i} == series {j}");
        }
    }
}

#[test]
fn full_protocol_loads_one_dataset() {
    // One full-size dataset (n = 1024, 100 series) materialises fine.
    let ds = catalogue()[0].load(&Protocol::paper());
    assert_eq!(ds.series.len(), 100);
    assert_eq!(ds.series_len(), 1024);
}

#[test]
fn ucr_round_trip_through_a_temp_dir() {
    // Write a miniature UCR-layout dataset and load it back.
    let dir = std::env::temp_dir().join(format!("sapla_ucr_test_{}", std::process::id()));
    let name = "MiniDataset";
    let base = dir.join(name);
    std::fs::create_dir_all(&base).unwrap();
    let train = "1\t0.0\t1.0\t2.0\t3.0\n2\t3.0\t2.0\t1.0\t0.0\n1\t1.0\t1.0\t2.0\t2.0\n";
    let test = "1\t0.5\t1.5\t2.5\t3.5\n";
    std::fs::write(base.join(format!("{name}_TRAIN.tsv")), train).unwrap();
    std::fs::write(base.join(format!("{name}_TEST.tsv")), test).unwrap();

    let ds = sapla_data::ucr::load_dataset(&dir, name, 10, 5).unwrap();
    assert_eq!(ds.name, name);
    assert_eq!(ds.series.len(), 3);
    assert_eq!(ds.queries.len(), 1);
    assert_eq!(ds.series_len(), 4);
    // Labels were dropped and series z-normalised.
    for s in &ds.series {
        assert!(s.mean().abs() < 1e-9);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn exact_knn_is_stable_under_ties() {
    // Duplicated series: ties break by id, deterministically.
    let protocol = Protocol { series_len: 32, series_per_dataset: 3, queries_per_dataset: 1 };
    let mut ds = catalogue()[0].load(&protocol);
    ds.series.push(ds.series[0].clone());
    let truth = ds.exact_knn(&ds.series[0].clone(), 2);
    assert_eq!(truth, vec![0, 3]);
}
